//! NELL-shaped full corpus (Figure 10c/d).
//!
//! NELL is a ClosedIE system: 2.9 M facts over only 330 ontology predicates
//! and 340 K URLs (Figure 7). Crucially for Figure 10d, *"the NELL dataset
//! contains one source that is disproportionally larger, and dominates the
//! running time of AGGCLUSTER"* — this generator plants exactly such a giant
//! source.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::model::{parse_source_url, Dataset, GroundTruth};
use crate::vertical::{plant_noise_source, plant_vertical, CorpusBuilder, VerticalSpec};
use midas_kb::{Interner, KnowledgeBase, Ontology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct NellConfig {
    /// Scale relative to the real dataset (1.0 = 2.9 M facts). The default
    /// 0.01 produces ≈ 29 K facts.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of entities in the disproportionately large source.
    pub giant_source_entities: usize,
}

impl Default for NellConfig {
    fn default() -> Self {
        NellConfig {
            scale: 0.01,
            seed: 42,
            giant_source_entities: 2_000,
        }
    }
}

/// NELL-ish category names.
const CATEGORIES: &[&str] = &[
    "athlete",
    "politician",
    "company",
    "river",
    "disease",
    "chemical",
    "university",
    "bird",
    "vehicle",
    "musicartist",
    "sportsteam",
    "writer",
];

/// Builds a NELL-style ontology: a root, the categories above, and ~330
/// predicates distributed over them.
pub fn nell_ontology() -> Ontology {
    let mut o = Ontology::new();
    let root = o.add_category("everything", None);
    let cats: Vec<_> = CATEGORIES
        .iter()
        .map(|c| o.add_category(c, Some(root)))
        .collect();
    o.add_predicate("generalizations", root);
    o.add_predicate("concept:latitudelongitude", root);
    for (i, &cat) in cats.iter().enumerate() {
        // ~27 predicates per category ≈ 330 total.
        for p in 0..27 {
            o.add_predicate(&format!("concept:{}attr{p}", CATEGORIES[i]), cat);
        }
    }
    o
}

/// Generates the NELL-shaped corpus (empty knowledge base, per §IV-B).
pub fn generate(cfg: &NellConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut terms = Interner::new();
    let mut builder = CorpusBuilder::new();
    let mut truth = GroundTruth::default();
    let mut faults = Vec::new();
    let ontology = nell_ontology();

    let target_facts = 2_900_000.0 * cfg.scale;

    // ClosedIE noise predicates: drawn from the ontology, not invented.
    let noise_preds: Vec<_> = ontology
        .predicates()
        .map(|p| terms.intern(ontology.predicate_name(p)))
        .collect();

    // The giant source (a Wikipedia-like aggregator) takes a large share of
    // the corpus, concentrated under one domain.
    if let Some(domain) = parse_source_url("http://giant.aggregator.org", &mut faults) {
        let section = domain.child("wiki");
        let spec = VerticalSpec {
            name: "wikientry".to_owned(),
            description: "aggregated encyclopedia entries".to_owned(),
            defining: vec![(
                "generalizations".to_owned(),
                "concept/encyclopediaentry".to_owned(),
            )],
            extra_predicates: (0..8)
                .map(|i| format!("concept:{}attr{i}", CATEGORIES[i % CATEGORIES.len()]))
                .collect(),
            num_entities: cfg.giant_source_entities,
            extra_facts_per_entity: (2, 6),
            // All entities on one page: the giant is a *single* source, which
            // is what makes AGGCLUSTER's quadratic cost cliff in Figure 10d.
            entities_per_page: cfg.giant_source_entities,
        };
        plant_vertical(
            &mut rng,
            &mut terms,
            &mut builder,
            &mut truth,
            &section,
            &spec,
        );
    }

    // Structured category sites.
    let good_domains = ((target_facts * 0.4 / 1_500.0).ceil() as usize).max(4);
    for g in 0..good_domains {
        let cat = CATEGORIES[g % CATEGORIES.len()];
        let Some(domain) = parse_source_url(&format!("http://www.{cat}-site{g}.org"), &mut faults)
        else {
            continue;
        };
        let section = domain.child("profiles");
        let spec = VerticalSpec {
            name: format!("{cat}{g}"),
            description: format!("profiles of {cat}s (domain {g})"),
            defining: vec![
                ("generalizations".to_owned(), format!("concept/{cat}")),
                (format!("concept:{cat}attr0"), format!("concept/site{g}")),
            ],
            extra_predicates: (1..5).map(|i| format!("concept:{cat}attr{i}")).collect(),
            num_entities: 240,
            extra_facts_per_entity: (1, 4),
            entities_per_page: 6,
        };
        plant_vertical(
            &mut rng,
            &mut terms,
            &mut builder,
            &mut truth,
            &section,
            &spec,
        );
    }

    // Noise tail with ontology predicates.
    let noise_domains = ((target_facts * 0.35 / 200.0).ceil() as usize).max(8);
    for n in 0..noise_domains {
        let Some(domain) = parse_source_url(&format!("http://crawl{n:04}.pages.net"), &mut faults)
        else {
            continue;
        };
        let entities = rng.gen_range(40..120usize);
        plant_noise_source(
            &mut rng,
            &mut terms,
            &mut builder,
            &domain,
            entities,
            &noise_preds,
            2,
        );
    }

    Dataset {
        name: "nell".to_owned(),
        terms,
        sources: builder.finish(),
        kb: KnowledgeBase::new(),
        truth,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        generate(&NellConfig {
            scale: 0.001,
            seed: 3,
            giant_source_entities: 400,
        })
    }

    #[test]
    fn predicate_vocabulary_is_closed() {
        let ds = tiny();
        let stats = ds.stats();
        assert!(
            stats.num_predicates <= 340,
            "ClosedIE: got {} predicates",
            stats.num_predicates
        );
    }

    #[test]
    fn one_source_dominates() {
        let ds = tiny();
        let mut sizes: Vec<(usize, &str)> = ds
            .sources
            .iter()
            .map(|s| (s.len(), s.url.as_str()))
            .collect();
        sizes.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
        assert!(
            sizes[0].1.contains("giant.aggregator"),
            "largest page-level source is the aggregator, got {}",
            sizes[0].1
        );
        assert!(
            sizes[0].0 > sizes[1].0 * 3,
            "the giant source must dominate: {} vs {}",
            sizes[0].0,
            sizes[1].0
        );
    }

    #[test]
    fn ontology_has_about_330_predicates() {
        let o = nell_ontology();
        assert!(
            (300..=340).contains(&o.num_predicates()),
            "{}",
            o.num_predicates()
        );
        assert_eq!(o.num_categories(), CATEGORIES.len() + 1);
    }

    #[test]
    fn gold_slices_present() {
        let ds = tiny();
        assert!(ds.truth.gold.len() >= 5);
        assert!(ds.faults.is_empty(), "clean generation has no read faults");
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.total_facts(), b.total_facts());
    }
}
