//! Content-addressed cache keys for corpus snapshots.
//!
//! A snapshot is only valid for the exact inputs and configuration it was
//! extracted from. The key is a 64-bit FNV-style hash over *labelled* parts —
//! each part is fed as `label \0 length \0 bytes`, so reordering parts,
//! moving bytes between parts, or concatenation ambiguities all change the
//! key. The snapshot format version is mixed in first: a format bump
//! invalidates every existing cache entry without any migration logic.
//!
//! Input corpora run to tens of megabytes and the key is recomputed on
//! every warm start, so the bulk of each part is consumed eight bytes at a
//! time (little-endian words with a multiply-xorshift round each); only the
//! sub-word tail falls back to byte-at-a-time FNV-1a. That keeps hashing a
//! small fraction of the mmap-load budget instead of dominating it.
//!
//! ```
//! use midas_extract::cachekey::CacheKey;
//! let key = CacheKey::new()
//!     .part("facts", b"http://a.com/x\te\tp\tv\n")
//!     .part("config", b"lenient=false")
//!     .finish();
//! assert_ne!(key, CacheKey::new().finish());
//! ```

use midas_kb::SNAPSHOT_VERSION;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Odd 64-bit constant (golden-ratio based) for the word-at-a-time rounds.
const MIX_PRIME: u64 = 0x9e37_79b9_7f4a_7c15;

/// Incremental builder for a snapshot cache key.
#[derive(Debug, Clone, Copy)]
pub struct CacheKey {
    h: u64,
}

impl CacheKey {
    /// Starts a key seeded with the snapshot format version.
    #[allow(clippy::new_without_default)]
    pub fn new() -> CacheKey {
        CacheKey { h: FNV_OFFSET }.part("format", &SNAPSHOT_VERSION.to_le_bytes())
    }

    fn eat(mut self, bytes: &[u8]) -> CacheKey {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.h = (self.h ^ u64::from_le_bytes(w)).wrapping_mul(MIX_PRIME);
            self.h ^= self.h >> 32;
        }
        for &b in chunks.remainder() {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Mixes in one labelled part. Order is significant.
    pub fn part(self, label: &str, bytes: &[u8]) -> CacheKey {
        self.eat(label.as_bytes())
            .eat(&[0])
            .eat(&(bytes.len() as u64).to_le_bytes())
            .eat(&[0])
            .eat(bytes)
    }

    /// Finishes the key with an avalanche mix, so single-bit input changes
    /// diffuse into the high bits as well.
    pub fn finish(self) -> u64 {
        let mut h = self.h;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_parts_produce_identical_keys() {
        let a = CacheKey::new()
            .part("facts", b"abc")
            .part("kb", b"")
            .finish();
        let b = CacheKey::new()
            .part("facts", b"abc")
            .part("kb", b"")
            .finish();
        assert_eq!(a, b);
    }

    #[test]
    fn any_input_change_changes_the_key() {
        let base = CacheKey::new()
            .part("facts", b"abc")
            .part("kb", b"x")
            .finish();
        let byte_flip = CacheKey::new()
            .part("facts", b"abd")
            .part("kb", b"x")
            .finish();
        let moved = CacheKey::new()
            .part("facts", b"abcx")
            .part("kb", b"")
            .finish();
        let relabel = CacheKey::new()
            .part("kb", b"abc")
            .part("facts", b"x")
            .finish();
        assert_ne!(base, byte_flip);
        assert_ne!(base, moved, "bytes cannot migrate between parts");
        assert_ne!(base, relabel, "labels are part of the key");
    }

    #[test]
    fn empty_parts_still_count() {
        let none = CacheKey::new().finish();
        let empty = CacheKey::new().part("facts", b"").finish();
        assert_ne!(none, empty);
    }
}
