//! ReVerb-shaped full corpus (Figure 10a/b).
//!
//! The real ReVerb ClueWeb dataset has 15 M facts, 327 K unlexicalised
//! predicates, and 20 M URLs (Figure 7) — more URLs than facts, i.e. a huge
//! long tail of pages contributing a single extraction. This generator
//! reproduces that *shape* at a configurable scale: a small population of
//! good domains with planted verticals, drowned in a long tail of
//! single-fact noise pages, with an OpenIE-sized predicate vocabulary.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::model::{parse_source_url, Dataset, GroundTruth};
use crate::vertical::{
    plant_noise_source, plant_vertical, predicate_pool, CorpusBuilder, VerticalSpec,
};
use midas_kb::{Interner, KnowledgeBase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReverbConfig {
    /// Scale relative to the real dataset (1.0 = 15 M facts). The default
    /// 0.01 produces ≈ 150 K facts.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReverbConfig {
    fn default() -> Self {
        ReverbConfig {
            scale: 0.01,
            seed: 42,
        }
    }
}

/// Vertical themes planted in good domains.
const THEMES: &[(&str, &str)] = &[
    ("city", "cities of the world"),
    ("movie", "feature films"),
    ("protein", "protein database entries"),
    ("mountain", "mountain peaks"),
    ("novel", "novels and authors"),
    ("aircraft", "aircraft models"),
    ("painting", "catalogued paintings"),
    ("stadium", "sports stadiums"),
];

/// Generates the ReVerb-shaped corpus (empty knowledge base, per §IV-B).
pub fn generate(cfg: &ReverbConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut terms = Interner::new();
    let mut builder = CorpusBuilder::new();
    let mut truth = GroundTruth::default();
    let mut faults = Vec::new();

    let target_facts = 15_000_000.0 * cfg.scale;
    // ≈ 35% of facts in good, structured domains; the rest is noise tail.
    let good_domains = ((target_facts * 0.35 / 2_500.0).ceil() as usize).max(4);
    let noise_domains = ((target_facts * 0.65 / 120.0).ceil() as usize).max(10);
    let pred_pool_size = ((327_000.0 * cfg.scale) as usize).max(200);
    let noise_preds = predicate_pool(&mut terms, "be_associated_with_form", pred_pool_size);

    for g in 0..good_domains {
        let (theme, description) = THEMES[g % THEMES.len()];
        let Some(domain) = parse_source_url(&format!("http://www.{theme}-db{g}.org"), &mut faults)
        else {
            continue;
        };
        let section = domain.child("entries");
        let entities = (2_500.0 * 0.8 / 5.0) as usize; // ≈ 400 entities
        let spec = VerticalSpec {
            name: format!("{theme}{g}"),
            description: format!("{description} (domain {g})"),
            defining: vec![
                ("be_a".to_owned(), theme.to_owned()),
                ("be_indexed_by".to_owned(), format!("{theme}-db{g}")),
            ],
            extra_predicates: vec![
                "be_located_in".to_owned(),
                "be_known_for".to_owned(),
                format!("have_{theme}_id"),
            ],
            num_entities: entities,
            extra_facts_per_entity: (1, 4),
            entities_per_page: 3,
        };
        plant_vertical(
            &mut rng,
            &mut terms,
            &mut builder,
            &mut truth,
            &section,
            &spec,
        );
        // Unstructured chatter inside good domains too.
        plant_noise_source(
            &mut rng,
            &mut terms,
            &mut builder,
            &domain.child("blog"),
            80,
            &noise_preds,
            2,
        );
    }

    // Big forums/news sites: as many as the good domains, each with *more*
    // loosely-related extractions than any good domain — these are what fool
    // NAIVE's new-fact ranking (§IV-C: "NAIVE may consider a forum or a news
    // website … as a good web source slice").
    for f in 0..good_domains {
        let Some(domain) =
            parse_source_url(&format!("http://bigforum{f:03}.boards.net"), &mut faults)
        else {
            continue;
        };
        let entities = rng.gen_range(1_200..2_200usize);
        plant_noise_source(
            &mut rng,
            &mut terms,
            &mut builder,
            &domain,
            entities,
            &noise_preds,
            8,
        );
    }

    for n in 0..noise_domains {
        let Some(domain) =
            parse_source_url(&format!("http://pages{n:05}.example.com"), &mut faults)
        else {
            continue;
        };
        // Long-tail pages: ~1–2 facts each.
        let entities = rng.gen_range(30..90usize);
        plant_noise_source(
            &mut rng,
            &mut terms,
            &mut builder,
            &domain,
            entities,
            &noise_preds,
            1,
        );
    }

    Dataset {
        name: "reverb".to_owned(),
        terms,
        sources: builder.finish(),
        kb: KnowledgeBase::new(),
        truth,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        generate(&ReverbConfig {
            scale: 0.0005,
            seed: 5,
        })
    }

    #[test]
    fn shape_has_long_url_tail() {
        let ds = tiny();
        let stats = ds.stats();
        assert!(stats.num_urls > 500, "many pages, got {}", stats.num_urls);
        // The long tail: the median page carries only a handful of facts.
        let mut sizes: Vec<usize> = ds.sources.iter().map(|s| s.len()).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!(
            median <= 5,
            "ReVerb shape is page-sparse at the median, got {median} facts"
        );
    }

    #[test]
    fn predicate_vocabulary_is_large() {
        let ds = tiny();
        assert!(ds.stats().num_predicates > 150);
    }

    #[test]
    fn gold_slices_exist_and_are_structured() {
        let ds = tiny();
        assert!(!ds.truth.gold.is_empty());
        for g in &ds.truth.gold {
            assert!(g.entities.len() >= 100);
            assert_eq!(g.properties.len(), 2);
        }
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.total_facts(), b.total_facts());
        assert_eq!(a.sources.len(), b.sources.len());
    }
}
