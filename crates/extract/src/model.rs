//! Shared data model of generated corpora.

use midas_core::{FaultCause, SourceFacts, SourceFault, Stage};
use midas_kb::fnv::FnvHashSet;
use midas_kb::{DatasetStats, Fact, Interner, KnowledgeBase, Symbol};
use midas_weburl::SourceUrl;

/// One confidence-scored extraction, as an automated pipeline emits it.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The extracted triple.
    pub fact: Fact,
    /// The page it was extracted from.
    pub url: SourceUrl,
    /// Pipeline confidence in `[0, 1]`.
    pub confidence: f64,
    /// Ground truth: whether the extraction is actually correct (used only
    /// by tests and precision reports, never by the algorithms).
    pub is_correct: bool,
}

/// A slice of the ground truth: what an ideal system should report.
#[derive(Debug, Clone)]
pub struct GoldSlice {
    /// The source the slice should be reported at.
    pub source: SourceUrl,
    /// Defining properties, sorted.
    pub properties: Vec<(Symbol, Symbol)>,
    /// Entity extent, sorted.
    pub entities: Vec<Symbol>,
    /// Human-readable description ("US golf courses", …).
    pub description: String,
}

impl GoldSlice {
    /// Jaccard similarity between this gold slice's entity set and a
    /// candidate entity set (both sorted).
    pub fn jaccard_entities(&self, other: &[Symbol]) -> f64 {
        if self.entities.is_empty() && other.is_empty() {
            return 1.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < self.entities.len() && j < other.len() {
            match self.entities[i].cmp(&other[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter as f64 / (self.entities.len() + other.len() - inter) as f64
    }
}

/// Machine-readable ground truth attached to a generated dataset.
#[derive(Debug, Default)]
pub struct GroundTruth {
    /// The slices an ideal system should report (the silver standard when
    /// produced by the slim generators).
    pub gold: Vec<GoldSlice>,
    /// Entities whose pages carry homogeneous, structured information —
    /// drives the simulated R_anno labeling of §IV-B.
    pub homogeneous_entities: FnvHashSet<Symbol>,
}

impl GroundTruth {
    /// Whether an entity's page is annotator-friendly.
    pub fn is_homogeneous(&self, e: Symbol) -> bool {
        self.homogeneous_entities.contains(&e)
    }
}

/// A generated corpus: everything an experiment run needs.
#[derive(Debug)]
pub struct Dataset {
    /// Human-readable dataset name ("reverb-slim", …).
    pub name: String,
    /// The term interner shared by facts, KB, and ground truth.
    pub terms: Interner,
    /// Per-source extracted fact sets (already confidence-filtered).
    pub sources: Vec<SourceFacts>,
    /// The knowledge base to augment.
    pub kb: KnowledgeBase,
    /// Evaluation ground truth.
    pub truth: GroundTruth,
    /// Read-stage faults raised while generating/ingesting the corpus
    /// (malformed URLs, injected parse failures). Empty for a clean corpus;
    /// callers fold these into the run's quarantine report.
    pub faults: Vec<SourceFault>,
}

impl Dataset {
    /// Figure 7-style statistics of the extracted corpus.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(self.sources.iter().flat_map(|s| {
            let url = s.url.as_str();
            s.facts.iter().map(move |&f| (f, url))
        }))
    }

    /// Total number of extracted facts across sources (with multiplicity).
    pub fn total_facts(&self) -> usize {
        self.sources.iter().map(SourceFacts::len).sum()
    }

    /// Restricts the dataset to the first `ratio` fraction of its sources
    /// (the "input ratio" axis of Figure 10b/d). Ground truth is untouched.
    pub fn with_input_ratio(&self, ratio: f64) -> Vec<SourceFacts> {
        let n = ((self.sources.len() as f64) * ratio).round() as usize;
        self.sources.iter().take(n.max(1)).cloned().collect()
    }
}

/// Parses a generator-produced URL spec, converting failure into a
/// read-stage [`SourceFault`] instead of panicking: the malformed spec is
/// recorded in `faults` (with the generator source file and line of the
/// call site) and `None` is returned so the caller drops that source and
/// carries on.
#[track_caller]
pub fn parse_source_url(spec: &str, faults: &mut Vec<SourceFault>) -> Option<SourceUrl> {
    match SourceUrl::parse(spec) {
        Ok(url) => Some(url),
        Err(err) => {
            let caller = std::panic::Location::caller();
            faults.push(SourceFault {
                source: spec.to_string(),
                stage: Stage::Read,
                cause: FaultCause::Parse {
                    file: caller.file().to_string(),
                    line: u64::from(caller.line()),
                    message: err.to_string(),
                },
                facts_seen: 0,
            });
            None
        }
    }
}

/// Converts confidence-scored extractions to per-source fact sets, keeping
/// only extractions at or above `min_confidence` — the paper's "correct
/// facts" filter (0.7 for KnowledgeVault, 0.75 for ReVerb/NELL).
pub fn extractions_to_sources(extractions: &[Extraction], min_confidence: f64) -> Vec<SourceFacts> {
    use std::collections::BTreeMap;
    let mut by_url: BTreeMap<&SourceUrl, Vec<Fact>> = BTreeMap::new();
    for e in extractions {
        if e.confidence >= min_confidence {
            by_url.entry(&e.url).or_default().push(e.fact);
        }
    }
    by_url
        .into_iter()
        .map(|(url, facts)| SourceFacts::new(url.clone(), facts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extractions_filter_by_confidence() {
        let mut t = Interner::new();
        let url = SourceUrl::parse("http://a.com/x").unwrap();
        let f1 = Fact::intern(&mut t, "a", "p", "1");
        let f2 = Fact::intern(&mut t, "b", "p", "2");
        let extractions = vec![
            Extraction {
                fact: f1,
                url: url.clone(),
                confidence: 0.9,
                is_correct: true,
            },
            Extraction {
                fact: f2,
                url: url.clone(),
                confidence: 0.5,
                is_correct: false,
            },
        ];
        let sources = extractions_to_sources(&extractions, 0.7);
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].len(), 1);
        assert_eq!(sources[0].facts[0], f1);
    }

    #[test]
    fn gold_slice_jaccard() {
        let mut t = Interner::new();
        let e: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| t.intern(s)).collect();
        let mut entities = e.clone();
        entities.sort_unstable();
        let gold = GoldSlice {
            source: SourceUrl::parse("http://a.com").unwrap(),
            properties: vec![],
            entities,
            description: "test".into(),
        };
        let mut two = vec![e[0], e[1]];
        two.sort_unstable();
        assert!((gold.jaccard_entities(&two) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(gold.jaccard_entities(&[]), 0.0);
    }

    #[test]
    fn dataset_stats_count_urls() {
        let mut t = Interner::new();
        let f1 = Fact::intern(&mut t, "a", "p", "1");
        let f2 = Fact::intern(&mut t, "b", "q", "2");
        let ds = Dataset {
            name: "test".into(),
            terms: t,
            sources: vec![
                SourceFacts::new(SourceUrl::parse("http://a.com/1").unwrap(), vec![f1]),
                SourceFacts::new(SourceUrl::parse("http://a.com/2").unwrap(), vec![f2]),
            ],
            kb: KnowledgeBase::new(),
            truth: GroundTruth::default(),
            faults: Vec::new(),
        };
        let s = ds.stats();
        assert_eq!(s.num_facts, 2);
        assert_eq!(s.num_urls, 2);
        assert_eq!(s.num_predicates, 2);
        assert_eq!(ds.total_facts(), 2);
    }

    #[test]
    fn parse_source_url_records_fault_with_context() {
        let mut faults = Vec::new();
        assert!(parse_source_url("http://ok.example.org/x", &mut faults).is_some());
        assert!(faults.is_empty());
        assert!(parse_source_url("not a url", &mut faults).is_none());
        assert_eq!(faults.len(), 1);
        let fault = &faults[0];
        assert_eq!(fault.source, "not a url");
        assert_eq!(fault.stage, Stage::Read);
        match &fault.cause {
            FaultCause::Parse { file, line, .. } => {
                assert!(file.ends_with("model.rs"), "caller file, got {file}");
                assert!(*line > 0);
            }
            other => panic!("unexpected cause {other:?}"),
        }
    }

    #[test]
    fn input_ratio_takes_prefix() {
        let mut t = Interner::new();
        let sources: Vec<SourceFacts> = (0..10)
            .map(|i| {
                SourceFacts::new(
                    SourceUrl::parse(&format!("http://a.com/{i}")).unwrap(),
                    vec![Fact::intern(&mut t, &format!("e{i}"), "p", "1")],
                )
            })
            .collect();
        let ds = Dataset {
            name: "t".into(),
            terms: t,
            sources,
            kb: KnowledgeBase::new(),
            truth: GroundTruth::default(),
            faults: Vec::new(),
        };
        assert_eq!(ds.with_input_ratio(0.5).len(), 5);
        assert_eq!(ds.with_input_ratio(0.0).len(), 1, "at least one source");
        assert_eq!(ds.with_input_ratio(1.0).len(), 10);
    }
}
