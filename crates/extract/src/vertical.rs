//! Shared corpus-building blocks: planted verticals and noise sources.
//!
//! A *vertical* is a coherent group of entities sharing defining properties
//! ("US golf courses", "rocket families sponsored by NASA"). Generators
//! plant verticals into web domains to create ground-truth slices, and
//! surround them with *noise sources* (forum/news-like pages of loosely
//! related facts) that no good slice should be found in.

use crate::model::{GoldSlice, GroundTruth};
use midas_core::SourceFacts;
use midas_kb::{Fact, Interner, Symbol};
use midas_weburl::SourceUrl;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Accumulates facts per page URL and produces [`SourceFacts`].
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    pages: BTreeMap<SourceUrl, Vec<Fact>>,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fact extracted from `url`.
    pub fn add(&mut self, url: &SourceUrl, fact: Fact) {
        self.pages.entry(url.clone()).or_default().push(fact);
    }

    /// Number of pages so far.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Finishes into per-source fact sets.
    pub fn finish(self) -> Vec<SourceFacts> {
        self.pages
            .into_iter()
            .map(|(url, facts)| SourceFacts::new(url, facts))
            .collect()
    }
}

/// Specification of one vertical to plant.
#[derive(Debug, Clone)]
pub struct VerticalSpec {
    /// Short identifier used in entity names ("golf_course").
    pub name: String,
    /// Human-readable description ("US golf courses").
    pub description: String,
    /// Defining `(predicate, value)` properties shared by every entity.
    pub defining: Vec<(String, String)>,
    /// Additional predicates entities may carry (with per-entity values).
    pub extra_predicates: Vec<String>,
    /// How many entities to generate.
    pub num_entities: usize,
    /// Inclusive range of extra facts per entity.
    pub extra_facts_per_entity: (usize, usize),
    /// Entities per page (1 = one detail page per entity).
    pub entities_per_page: usize,
}

impl VerticalSpec {
    /// A small default spec for tests.
    pub fn small(name: &str, defining: &[(&str, &str)]) -> Self {
        VerticalSpec {
            name: name.to_owned(),
            description: name.to_owned(),
            defining: defining
                .iter()
                .map(|&(p, v)| (p.to_owned(), v.to_owned()))
                .collect(),
            extra_predicates: vec!["location".into(), "opened".into(), "rating".into()],
            num_entities: 20,
            extra_facts_per_entity: (1, 3),
            entities_per_page: 1,
        }
    }
}

/// Plants a vertical under `section` (e.g. `https://golfadvisor.com/course-directory`).
///
/// Every entity receives all defining properties plus a few extra facts;
/// entities are spread over pages under the section URL. Entities are
/// registered as homogeneous in `truth`, and a [`GoldSlice`] describing the
/// vertical at the section granularity is appended to `truth.gold`.
///
/// Returns all facts generated for the vertical (so callers can decide which
/// go into the knowledge base).
pub fn plant_vertical(
    rng: &mut StdRng,
    terms: &mut Interner,
    builder: &mut CorpusBuilder,
    truth: &mut GroundTruth,
    section: &SourceUrl,
    spec: &VerticalSpec,
) -> Vec<Fact> {
    let defining: Vec<(Symbol, Symbol)> = spec
        .defining
        .iter()
        .map(|(p, v)| (terms.intern(p), terms.intern(v)))
        .collect();
    let extra: Vec<Symbol> = spec
        .extra_predicates
        .iter()
        .map(|p| terms.intern(p))
        .collect();

    let mut all_facts = Vec::new();
    let mut entities = Vec::with_capacity(spec.num_entities);
    for i in 0..spec.num_entities {
        let subject = terms.intern(&format!("{}_{i}", spec.name));
        entities.push(subject);
        truth.homogeneous_entities.insert(subject);
        let page_idx = i / spec.entities_per_page.max(1);
        let page = section.child(&format!("{}-{page_idx}.html", spec.name));
        for &(p, v) in &defining {
            let f = Fact::new(subject, p, v);
            builder.add(&page, f);
            all_facts.push(f);
        }
        let (lo, hi) = spec.extra_facts_per_entity;
        let n_extra = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        for k in 0..n_extra {
            if extra.is_empty() {
                break;
            }
            let p = extra[k % extra.len()];
            let v = terms.intern(&format!("{}_val_{}", spec.name, rng.gen_range(0..50u32)));
            let f = Fact::new(subject, p, v);
            builder.add(&page, f);
            all_facts.push(f);
        }
    }
    let mut props: Vec<(Symbol, Symbol)> = defining;
    props.sort_unstable();
    entities.sort_unstable();
    entities.dedup();
    truth.gold.push(GoldSlice {
        source: section.clone(),
        properties: props,
        entities,
        description: spec.description.clone(),
    });
    all_facts
}

/// Plants a forum/news-like noise source: `num_entities` entities with
/// loosely related facts — every object value is (near-)unique, so no
/// property is shared by enough entities to form a worthwhile slice.
pub fn plant_noise_source(
    rng: &mut StdRng,
    terms: &mut Interner,
    builder: &mut CorpusBuilder,
    base: &SourceUrl,
    num_entities: usize,
    predicate_pool: &[Symbol],
    entities_per_page: usize,
) -> Vec<Fact> {
    let mut out = Vec::new();
    for i in 0..num_entities {
        let subject = terms.intern(&format!("{}_post_{i}", base.host()));
        let page = base.child(&format!("thread-{}.html", i / entities_per_page.max(1)));
        let n_facts = rng.gen_range(1..=4usize);
        for _ in 0..n_facts {
            let p = predicate_pool[rng.gen_range(0..predicate_pool.len())];
            let v = terms.intern(&format!("misc_{}", rng.gen::<u32>()));
            let f = Fact::new(subject, p, v);
            builder.add(&page, f);
            out.push(f);
        }
    }
    out
}

/// Builds a pool of `n` predicate symbols with the given prefix.
pub fn predicate_pool(terms: &mut Interner, prefix: &str, n: usize) -> Vec<Symbol> {
    (0..n)
        .map(|i| terms.intern(&format!("{prefix}_{i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn planted_vertical_produces_gold_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut terms = Interner::new();
        let mut builder = CorpusBuilder::new();
        let mut truth = GroundTruth::default();
        let section = SourceUrl::parse("https://golfadvisor.com/course-directory").unwrap();
        let spec = VerticalSpec::small("golf", &[("type", "golf_course"), ("country", "USA")]);
        let facts = plant_vertical(
            &mut rng,
            &mut terms,
            &mut builder,
            &mut truth,
            &section,
            &spec,
        );
        assert_eq!(truth.gold.len(), 1);
        let gold = &truth.gold[0];
        assert_eq!(gold.entities.len(), 20);
        assert_eq!(gold.properties.len(), 2);
        assert!(facts.len() >= 20 * 3, "2 defining + ≥1 extra per entity");
        assert!(truth.homogeneous_entities.len() == 20);
        let sources = builder.finish();
        assert!(!sources.is_empty());
        for s in &sources {
            assert!(section.contains(&s.url));
        }
    }

    #[test]
    fn every_planted_entity_has_all_defining_properties() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut terms = Interner::new();
        let mut builder = CorpusBuilder::new();
        let mut truth = GroundTruth::default();
        let section = SourceUrl::parse("https://x.com/s").unwrap();
        let spec = VerticalSpec::small("boardgame", &[("type", "board_game")]);
        let facts = plant_vertical(
            &mut rng,
            &mut terms,
            &mut builder,
            &mut truth,
            &section,
            &spec,
        );
        let type_sym = terms.get("type").unwrap();
        let bg = terms.get("board_game").unwrap();
        for &e in &truth.gold[0].entities {
            assert!(facts
                .iter()
                .any(|f| f.subject == e && f.predicate == type_sym && f.object == bg));
        }
    }

    #[test]
    fn noise_source_has_no_shared_object_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut terms = Interner::new();
        let mut builder = CorpusBuilder::new();
        let base = SourceUrl::parse("http://blogs.example.com").unwrap();
        let pool = predicate_pool(&mut terms, "said", 10);
        let facts = plant_noise_source(&mut rng, &mut terms, &mut builder, &base, 50, &pool, 5);
        assert!(!facts.is_empty());
        // Value collisions should be essentially absent.
        let mut values: Vec<Symbol> = facts.iter().map(|f| f.object).collect();
        values.sort_unstable();
        let before = values.len();
        values.dedup();
        assert!(values.len() as f64 > before as f64 * 0.95);
    }

    #[test]
    fn corpus_builder_groups_by_page() {
        let mut terms = Interner::new();
        let mut b = CorpusBuilder::new();
        let u1 = SourceUrl::parse("http://a.com/1").unwrap();
        let u2 = SourceUrl::parse("http://a.com/2").unwrap();
        b.add(&u1, Fact::intern(&mut terms, "x", "p", "1"));
        b.add(&u2, Fact::intern(&mut terms, "y", "p", "2"));
        b.add(&u1, Fact::intern(&mut terms, "x", "q", "3"));
        assert_eq!(b.num_pages(), 2);
        let sources = b.finish();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources.iter().map(|s| s.len()).sum::<usize>(), 3);
    }
}
