//! The §IV-D synthetic-data generator (Figure 11).
//!
//! Parameters follow the paper: a single web source with `b` slices, `m ≤ b`
//! of which are *optimal* (their facts are new), and `n` facts in total.
//! Each slice has a 5-condition selection rule; each of its `n·1%` entities
//! carries every rule condition with high probability (paper: "above 0.95";
//! we use 0.99) and a foreign condition with low probability (paper: "below
//! 0.05"; we use 0.05 per entity, spread uniformly over foreign conditions).
//! For non-optimal slices, 95 % of facts are pre-loaded into the knowledge
//! base, so the optimal output is exactly the `m` optimal slices.

use crate::model::{Dataset, GoldSlice, GroundTruth};
use midas_core::SourceFacts;
use midas_kb::{Fact, Interner, KnowledgeBase, Symbol};
use midas_weburl::SourceUrl;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of conditions per selection rule (fixed by the paper).
pub const CONDITIONS_PER_RULE: usize = 5;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// `n` — target number of facts (input size).
    pub num_facts: usize,
    /// `b` — number of slices in the source (the paper uses 20).
    pub num_slices: usize,
    /// `m` — number of optimal slices (output size), `m ≤ b`.
    pub num_optimal: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that an entity carries each rule condition (paper: > 0.95).
    pub rule_inclusion: f64,
    /// Probability that an entity carries one foreign condition (paper's
    /// per-condition probability stays far below 0.05).
    pub foreign_inclusion: f64,
    /// Fraction of non-optimal slices' facts pre-loaded into the KB.
    pub kb_fraction: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_facts: 5_000,
            num_slices: 20,
            num_optimal: 10,
            seed: 42,
            rule_inclusion: 0.99,
            // Kept low (the paper only bounds it by 0.05): each foreign
            // leaker drags its ~5 new facts into another slice's extent and
            // can push worthless slices above zero profit.
            foreign_inclusion: 0.02,
            kb_fraction: 0.95,
        }
    }
}

impl SyntheticConfig {
    /// Convenience constructor mirroring the paper's parameter triple.
    pub fn new(num_facts: usize, num_slices: usize, num_optimal: usize, seed: u64) -> Self {
        assert!(num_optimal <= num_slices, "m must not exceed b");
        SyntheticConfig {
            num_facts,
            num_slices,
            num_optimal,
            seed,
            ..SyntheticConfig::default()
        }
    }
}

/// The single source URL the synthetic corpus lives at.
pub fn synthetic_url() -> SourceUrl {
    SourceUrl::parse("http://synthetic.example.org/data").expect("static URL")
}

/// Generates the §IV-D dataset.
pub fn generate(cfg: &SyntheticConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut terms = Interner::new();
    let url = synthetic_url();

    // Rule conditions: shared predicates pred_0..pred_4, slice-specific
    // values — rules are disjoint but structurally comparable.
    let predicates: Vec<Symbol> = (0..CONDITIONS_PER_RULE)
        .map(|i| terms.intern(&format!("pred_{i}")))
        .collect();
    let rules: Vec<Vec<(Symbol, Symbol)>> = (0..cfg.num_slices)
        .map(|s| {
            predicates
                .iter()
                .map(|&p| (p, terms.intern(&format!("slice{s}_value_{p}"))))
                .collect()
        })
        .collect();

    let entities_per_slice = (cfg.num_facts / 100).max(1);
    let mut facts = Vec::with_capacity(cfg.num_facts + cfg.num_facts / 10);
    let mut kb = KnowledgeBase::new();
    let mut truth = GroundTruth::default();

    // Optimal slices are the first `m` (the rules are i.i.d., so which ones
    // are optimal carries no information).
    for (s, rule) in rules.iter().enumerate() {
        let optimal = s < cfg.num_optimal;
        let mut slice_entities = Vec::with_capacity(entities_per_slice);
        let mut slice_facts: Vec<Fact> = Vec::with_capacity(entities_per_slice * 6);
        for e in 0..entities_per_slice {
            let subject = terms.intern(&format!("slice{s}_entity{e}"));
            slice_entities.push(subject);
            truth.homogeneous_entities.insert(subject);
            for &(p, v) in rule {
                if rng.gen::<f64>() < cfg.rule_inclusion {
                    slice_facts.push(Fact::new(subject, p, v));
                }
            }
            if rng.gen::<f64>() < cfg.foreign_inclusion && cfg.num_slices > 1 {
                // One condition from a uniformly random foreign rule.
                let mut other = rng.gen_range(0..cfg.num_slices);
                if other == s {
                    other = (other + 1) % cfg.num_slices;
                }
                let (p, v) = rules[other][rng.gen_range(0..CONDITIONS_PER_RULE)];
                slice_facts.push(Fact::new(subject, p, v));
            }
        }
        if !optimal {
            // "randomly select 0.95 of their facts and add them in the
            // existing knowledge base" — exact sampling without replacement,
            // so a non-optimal slice is *reliably* unprofitable.
            use rand::seq::SliceRandom;
            let n_known = (slice_facts.len() as f64 * cfg.kb_fraction).round() as usize;
            let mut order: Vec<usize> = (0..slice_facts.len()).collect();
            order.shuffle(&mut rng);
            for &i in order.iter().take(n_known) {
                kb.insert(slice_facts[i]);
            }
        }
        facts.extend_from_slice(&slice_facts);
        if optimal {
            let mut props = rule.clone();
            props.sort_unstable();
            slice_entities.sort_unstable();
            truth.gold.push(GoldSlice {
                source: url.clone(),
                properties: props,
                entities: slice_entities,
                description: format!("synthetic optimal slice {s}"),
            });
        }
    }

    Dataset {
        name: format!(
            "synthetic(n={}, b={}, m={})",
            cfg.num_facts, cfg.num_slices, cfg.num_optimal
        ),
        terms,
        sources: vec![SourceFacts::new(url, facts)],
        kb,
        truth,
        faults: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_count_is_close_to_n() {
        let ds = generate(&SyntheticConfig::new(5_000, 20, 10, 1));
        let total = ds.total_facts();
        // b=20 slices × n/100 entities × ~5 conditions ≈ n.
        assert!(
            (4_300..5_700).contains(&total),
            "expected ≈5000 facts, got {total}"
        );
    }

    #[test]
    fn gold_has_m_slices_covering_5_percent_each() {
        let ds = generate(&SyntheticConfig::new(5_000, 20, 7, 2));
        assert_eq!(ds.truth.gold.len(), 7);
        let total = ds.total_facts() as f64;
        for g in &ds.truth.gold {
            // ≥ 5% of input facts per optimal slice (paper requirement).
            let approx_facts = g.entities.len() as f64 * 5.0 * 0.99;
            assert!(approx_facts / total > 0.04, "slice too small");
        }
    }

    #[test]
    fn optimal_facts_are_new_nonoptimal_mostly_known() {
        let ds = generate(&SyntheticConfig::new(5_000, 20, 10, 3));
        let src = &ds.sources[0];
        let new = ds.kb.count_new(src.facts.iter());
        let ratio = new as f64 / src.facts.len() as f64;
        // 10 optimal slices new (≈50%) + 5% of the non-optimal half.
        assert!(
            (0.45..0.62).contains(&ratio),
            "new-fact ratio should be ≈ 0.52, got {ratio}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&SyntheticConfig::new(2_000, 20, 5, 9));
        let b = generate(&SyntheticConfig::new(2_000, 20, 5, 9));
        assert_eq!(a.total_facts(), b.total_facts());
        assert_eq!(a.kb.len(), b.kb.len());
        assert_eq!(a.truth.gold.len(), b.truth.gold.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig::new(2_000, 20, 5, 1));
        let b = generate(&SyntheticConfig::new(2_000, 20, 5, 2));
        assert_ne!(
            (a.total_facts(), a.kb.len()),
            (b.total_facts(), b.kb.len()),
            "independent seeds should perturb the corpus"
        );
    }

    #[test]
    fn single_optimal_slice_config() {
        let ds = generate(&SyntheticConfig::new(5_000, 20, 1, 4));
        assert_eq!(ds.truth.gold.len(), 1);
        assert!(!ds.kb.is_empty());
    }

    #[test]
    #[should_panic(expected = "m must not exceed b")]
    fn rejects_m_greater_than_b() {
        let _ = SyntheticConfig::new(1_000, 5, 6, 0);
    }
}
