//! KnowledgeVault-shaped corpus with the six verticals of Figure 3.
//!
//! The paper's qualitative experiment ran MIDAS over KnowledgeVault (810 M
//! facts from 218 M sources — proprietary) against Freebase and found, among
//! others, the six slices of Figure 3, each with a characteristic ratio of
//! new facts inside the slice (67–83 %) and inside the whole source
//! (10–27 %). This generator plants those six verticals with exactly those
//! target ratios: the vertical section carries mostly-new facts, while the
//! rest of the domain is content Freebase already knows.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::model::{parse_source_url, Dataset, GroundTruth};
use crate::vertical::{
    plant_noise_source, plant_vertical, predicate_pool, CorpusBuilder, VerticalSpec,
};
use midas_kb::{Interner, KnowledgeBase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Figure 3 row: description, source URL, new-ratio in slice, new-ratio
/// in source.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Slice description as printed in the paper.
    pub description: &'static str,
    /// The web source of the slice.
    pub url: &'static str,
    /// Entity-name stem.
    pub stem: &'static str,
    /// Ratio of new facts in the slice.
    pub slice_new_ratio: f64,
    /// Ratio of new facts in the whole web source.
    pub source_new_ratio: f64,
}

/// The six Figure 3 rows.
pub const FIG3_ROWS: &[Fig3Row] = &[
    Fig3Row {
        description: "Education organizations",
        url: "http://www.schoolmap.org/school",
        stem: "school",
        slice_new_ratio: 0.67,
        source_new_ratio: 0.15,
    },
    Fig3Row {
        description: "US golf courses",
        url: "https://www.golfadvisor.com/course-directory/2-usa",
        stem: "golf_course",
        slice_new_ratio: 0.77,
        source_new_ratio: 0.13,
    },
    Fig3Row {
        description: "Biology facts",
        url: "http://www.marinespecies.org/species",
        stem: "marine_species",
        slice_new_ratio: 0.75,
        source_new_ratio: 0.27,
    },
    Fig3Row {
        description: "Board games",
        url: "http://boardgaming.com/games/board-games",
        stem: "board_game",
        slice_new_ratio: 0.83,
        source_new_ratio: 0.20,
    },
    Fig3Row {
        description: "Skyscraper architectures",
        url: "http://skyscrapercenter.com/building",
        stem: "skyscraper",
        slice_new_ratio: 0.80,
        source_new_ratio: 0.10,
    },
    Fig3Row {
        description: "Indian politicians",
        url: "http://www.archive.india.gov.in/ministers",
        stem: "indian_politician",
        slice_new_ratio: 0.71,
        source_new_ratio: 0.18,
    },
];

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct KVaultConfig {
    /// Scales the per-vertical entity counts (1.0 ≈ 200 entities each).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KVaultConfig {
    fn default() -> Self {
        KVaultConfig {
            scale: 1.0,
            seed: 42,
        }
    }
}

/// Generates the KnowledgeVault-like corpus and its Freebase-like KB.
pub fn generate(cfg: &KVaultConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut terms = Interner::new();
    let mut builder = CorpusBuilder::new();
    let mut truth = GroundTruth::default();
    let mut kb = KnowledgeBase::new();
    let mut faults = Vec::new();

    let filler_preds = predicate_pool(&mut terms, "common_attribute", 40);

    for row in FIG3_ROWS {
        let Some(section) = parse_source_url(row.url, &mut faults) else {
            continue;
        };
        let domain = section.domain();
        let entities = ((200.0 * cfg.scale) as usize).max(20);
        let spec = VerticalSpec {
            name: row.stem.to_owned(),
            description: row.description.to_owned(),
            defining: vec![
                ("type".to_owned(), row.stem.to_owned()),
                ("listed_by".to_owned(), domain.host().to_owned()),
            ],
            extra_predicates: vec![
                "name".to_owned(),
                "location".to_owned(),
                format!("{}_detail", row.stem),
            ],
            num_entities: entities,
            extra_facts_per_entity: (2, 4),
            entities_per_page: 5,
        };
        let slice_facts = plant_vertical(
            &mut rng,
            &mut terms,
            &mut builder,
            &mut truth,
            &section,
            &spec,
        );

        // Freebase already knows (1 − slice_new_ratio) of the slice facts —
        // KnowledgeVault re-extracts plenty of known content.
        for &f in &slice_facts {
            if rng.gen::<f64>() < 1.0 - row.slice_new_ratio {
                kb.insert(f);
            }
        }
        let slice_new = slice_facts.iter().filter(|f| kb.is_new(f)).count();

        // The rest of the domain is well-covered content: sized so that the
        // whole-source new ratio lands at `source_new_ratio`.
        let filler_total = (slice_new as f64 / row.source_new_ratio) as usize - slice_facts.len();
        let filler_entities = (filler_total / 3).max(1);
        let filler = plant_noise_source(
            &mut rng,
            &mut terms,
            &mut builder,
            &domain.child("popular"),
            filler_entities,
            &filler_preds,
            10,
        );
        for &f in &filler {
            kb.insert(f);
        }
    }

    // Freebase-like bulk unrelated to the corpus (coverage of other topics).
    for i in 0..2_000usize {
        let f = midas_kb::Fact::intern(
            &mut terms,
            &format!("freebase_entity_{i}"),
            "type",
            "well_known_topic",
        );
        kb.insert(f);
    }

    Dataset {
        name: "knowledgevault".to_owned(),
        terms,
        sources: builder.finish(),
        kb,
        truth,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_core::SourceFacts;
    use midas_weburl::SourceUrl;

    fn tiny() -> Dataset {
        generate(&KVaultConfig {
            scale: 0.3,
            seed: 9,
        })
    }

    fn domain_facts<'a>(ds: &'a Dataset, host: &str) -> Vec<&'a SourceFacts> {
        ds.sources.iter().filter(|s| s.url.host() == host).collect()
    }

    #[test]
    fn six_gold_slices() {
        let ds = tiny();
        assert_eq!(ds.truth.gold.len(), 6);
        for (g, row) in ds.truth.gold.iter().zip(FIG3_ROWS) {
            assert_eq!(g.description, row.description);
        }
    }

    #[test]
    fn slice_new_ratios_land_near_targets() {
        let ds = tiny();
        for (g, row) in ds.truth.gold.iter().zip(FIG3_ROWS) {
            let section_sources: Vec<&SourceFacts> = ds
                .sources
                .iter()
                .filter(|s| g.source.contains(&s.url))
                .collect();
            let total: usize = section_sources.iter().map(|s| s.len()).sum();
            let new: usize = section_sources
                .iter()
                .map(|s| ds.kb.count_new(s.facts.iter()))
                .sum();
            let ratio = new as f64 / total as f64;
            assert!(
                (ratio - row.slice_new_ratio).abs() < 0.12,
                "{}: expected ≈{}, got {ratio:.2}",
                row.description,
                row.slice_new_ratio
            );
        }
    }

    #[test]
    fn source_new_ratios_land_near_targets() {
        let ds = tiny();
        for row in FIG3_ROWS {
            let host = SourceUrl::parse(row.url).unwrap().host().to_owned();
            let sources = domain_facts(&ds, &host);
            let total: usize = sources.iter().map(|s| s.len()).sum();
            let new: usize = sources
                .iter()
                .map(|s| ds.kb.count_new(s.facts.iter()))
                .sum();
            let ratio = new as f64 / total as f64;
            assert!(
                (ratio - row.source_new_ratio).abs() < 0.10,
                "{}: expected ≈{}, got {ratio:.2}",
                row.description,
                row.source_new_ratio
            );
        }
    }

    #[test]
    fn kb_is_substantial() {
        let ds = tiny();
        assert!(ds.kb.len() > 2_000, "Freebase-like KB has bulk content");
    }
}
