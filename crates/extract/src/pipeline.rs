//! The noisy extraction simulator.
//!
//! Automated pipelines miss most facts (the paper cites ≤ 0.3 recall at
//! TAC-KBP) and emit wrong ones with low confidence. [`ExtractionSim`] takes
//! the *true* facts of a page and produces what a pipeline would emit:
//!
//! * each true fact survives with probability [`recall`](ExtractionSim::recall)
//!   and gets a high confidence score (most above the filter threshold);
//! * wrong extractions (corrupted objects) are injected at
//!   [`noise_rate`](ExtractionSim::noise_rate) per emitted fact, mostly with
//!   low confidence — mirroring the pipelines' own calibration — but a small
//!   fraction leak above the threshold, as real extractions do.

use crate::model::Extraction;
use midas_kb::{Fact, Interner};
use midas_weburl::SourceUrl;
use rand::rngs::StdRng;
use rand::Rng;

/// Configurable extraction-noise model.
#[derive(Debug, Clone, Copy)]
pub struct ExtractionSim {
    /// Probability that a true fact is extracted at all.
    pub recall: f64,
    /// Expected number of spurious extractions per emitted true fact.
    pub noise_rate: f64,
    /// Probability that a spurious extraction still scores above the
    /// confidence threshold (leakage).
    pub noise_leak: f64,
    /// The confidence threshold the consumer will filter at.
    pub threshold: f64,
}

impl Default for ExtractionSim {
    fn default() -> Self {
        ExtractionSim {
            recall: 0.3,
            noise_rate: 0.25,
            noise_leak: 0.05,
            threshold: 0.7,
        }
    }
}

impl ExtractionSim {
    /// A perfect pipeline (used by generators that model the post-filter
    /// corpus directly).
    pub fn perfect() -> Self {
        ExtractionSim {
            recall: 1.0,
            noise_rate: 0.0,
            noise_leak: 0.0,
            threshold: 0.7,
        }
    }

    /// Simulates extraction of `true_facts` from `url`.
    pub fn extract(
        &self,
        rng: &mut StdRng,
        terms: &mut Interner,
        url: &SourceUrl,
        true_facts: &[Fact],
    ) -> Vec<Extraction> {
        let mut out = Vec::new();
        for &f in true_facts {
            if rng.gen::<f64>() >= self.recall {
                continue;
            }
            // Correct extractions score high: threshold..1.0 mostly, with a
            // small miss-rate below threshold.
            let confidence = if rng.gen::<f64>() < 0.9 {
                self.threshold + rng.gen::<f64>() * (1.0 - self.threshold)
            } else {
                rng.gen::<f64>() * self.threshold
            };
            out.push(Extraction {
                fact: f,
                url: url.clone(),
                confidence,
                is_correct: true,
            });
            // Spurious extraction: corrupt the object.
            if rng.gen::<f64>() < self.noise_rate {
                let wrong_object = terms.intern(&format!("noise_value_{}", rng.gen::<u32>()));
                let confidence = if rng.gen::<f64>() < self.noise_leak {
                    self.threshold + rng.gen::<f64>() * (1.0 - self.threshold)
                } else {
                    rng.gen::<f64>() * self.threshold
                };
                out.push(Extraction {
                    fact: Fact::new(f.subject, f.predicate, wrong_object),
                    url: url.clone(),
                    confidence,
                    is_correct: false,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::extractions_to_sources;
    use rand::SeedableRng;

    fn true_facts(terms: &mut Interner, n: usize) -> Vec<Fact> {
        (0..n)
            .map(|i| Fact::intern(terms, &format!("e{i}"), "p", &format!("v{}", i % 7)))
            .collect()
    }

    #[test]
    fn recall_controls_extraction_volume() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut terms = Interner::new();
        let url = SourceUrl::parse("http://a.com/x").unwrap();
        let facts = true_facts(&mut terms, 2000);
        let sim = ExtractionSim {
            recall: 0.3,
            ..Default::default()
        };
        let out = sim.extract(&mut rng, &mut terms, &url, &facts);
        let correct = out.iter().filter(|e| e.is_correct).count();
        assert!((450..750).contains(&correct), "≈ 30% recall, got {correct}");
    }

    #[test]
    fn filtered_corpus_is_mostly_correct() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut terms = Interner::new();
        let url = SourceUrl::parse("http://a.com/x").unwrap();
        let facts = true_facts(&mut terms, 3000);
        let sim = ExtractionSim::default();
        let out = sim.extract(&mut rng, &mut terms, &url, &facts);
        let above: Vec<&Extraction> = out.iter().filter(|e| e.confidence >= 0.7).collect();
        let correct_above = above.iter().filter(|e| e.is_correct).count();
        assert!(
            correct_above as f64 / above.len() as f64 > 0.9,
            "confidence filtering yields high precision"
        );
    }

    #[test]
    fn perfect_pipeline_is_lossless_and_clean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut terms = Interner::new();
        let url = SourceUrl::parse("http://a.com/x").unwrap();
        let facts = true_facts(&mut terms, 100);
        let sim = ExtractionSim::perfect();
        let out = sim.extract(&mut rng, &mut terms, &url, &facts);
        assert_eq!(out.iter().filter(|e| e.is_correct).count(), 100);
        assert!(out.iter().all(|e| e.is_correct));
        let sources = extractions_to_sources(&out, 0.7);
        // Some correct facts may score below threshold (10% by design) —
        // but the perfect pipeline still extracts everything.
        assert_eq!(sources.len(), 1);
        assert!(sources[0].len() >= 80);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut terms1 = Interner::new();
        let mut terms2 = Interner::new();
        let url = SourceUrl::parse("http://a.com/x").unwrap();
        let f1 = true_facts(&mut terms1, 50);
        let f2 = true_facts(&mut terms2, 50);
        let sim = ExtractionSim::default();
        let o1 = sim.extract(&mut StdRng::seed_from_u64(42), &mut terms1, &url, &f1);
        let o2 = sim.extract(&mut StdRng::seed_from_u64(42), &mut terms2, &url, &f2);
        assert_eq!(o1.len(), o2.len());
        for (a, b) in o1.iter().zip(&o2) {
            assert_eq!(a.confidence, b.confidence);
            assert_eq!(a.is_correct, b.is_correct);
        }
    }
}
