//! # midas-extract — automated-extraction simulation and corpus generators
//!
//! MIDAS consumes the output of large-scale automated knowledge-extraction
//! pipelines (KnowledgeVault, ReVerb, NELL in the paper's evaluation). Those
//! datasets are proprietary or impractically large, so this crate builds
//! their closest synthetic equivalents:
//!
//! * [`pipeline`] — a noisy extraction simulator: given the "true" facts of
//!   a page it produces confidence-scored extractions with configurable
//!   recall and noise, mimicking the ≥ 0.7-confidence filtering the paper
//!   applies to KnowledgeVault (and ≥ 0.75 for ReVerb/NELL).
//! * [`synthetic`] — the §IV-D generator behind Figure 11 (k slices with
//!   5-condition selection rules, m optimal, n facts, 0.95/0.05 inclusion
//!   probabilities, 95 % of non-optimal facts pre-loaded into the KB).
//! * [`slim`] — ReVerb-Slim / NELL-Slim: 100 sources, 50 of which contain at
//!   least one planted high-profit slice (Figures 8 and 9).
//! * [`reverb`] / [`nell`] — full-shape OpenIE / ClosedIE corpora matching
//!   the Figure 7 statistics at a configurable scale (Figure 10).
//! * [`kvault`] — a KnowledgeVault-like multi-domain corpus with the six
//!   verticals of Figure 3 planted, against a Freebase-like KB that misses
//!   them.
//!
//! Every generator is fully deterministic under a caller-supplied seed and
//! returns a [`Dataset`]: the per-source facts, the knowledge base to
//! augment, the interner, and machine-readable ground truth
//! ([`GroundTruth`]) for evaluation.

#![warn(missing_docs)]

pub mod cachekey;
pub mod kvault;
pub mod model;
pub mod nell;
pub mod pipeline;
pub mod reverb;
pub mod slim;
pub mod synthetic;
pub mod vertical;

pub use cachekey::CacheKey;
pub use model::{Dataset, Extraction, GoldSlice, GroundTruth};
pub use pipeline::ExtractionSim;
