//! Cross-generator invariants: every corpus generator must produce
//! internally consistent datasets (ground truth grounded in the facts,
//! deterministic under seeds, well-formed URLs).

use midas_extract::kvault::{self, KVaultConfig};
use midas_extract::nell::{self, NellConfig};
use midas_extract::reverb::{self, ReverbConfig};
use midas_extract::slim::{self, SlimConfig, SlimFlavor};
use midas_extract::synthetic::{self, SyntheticConfig};
use midas_extract::Dataset;
use midas_kb::fnv::FnvHashSet;
use midas_kb::Symbol;

fn all_datasets() -> Vec<Dataset> {
    vec![
        synthetic::generate(&SyntheticConfig::new(1_500, 20, 5, 77)),
        slim::generate(&SlimConfig {
            flavor: SlimFlavor::ReVerb,
            scale: 0.002,
            seed: 77,
        }),
        slim::generate(&SlimConfig {
            flavor: SlimFlavor::Nell,
            scale: 0.002,
            seed: 77,
        }),
        reverb::generate(&ReverbConfig {
            scale: 0.0004,
            seed: 77,
        }),
        nell::generate(&NellConfig {
            scale: 0.001,
            seed: 77,
            giant_source_entities: 200,
        }),
        kvault::generate(&KVaultConfig {
            scale: 0.15,
            seed: 77,
        }),
    ]
}

/// Every gold slice's entities actually occur as subjects in sources under
/// the slice's URL.
#[test]
fn gold_entities_are_grounded_in_their_sources() {
    for ds in all_datasets() {
        for gold in &ds.truth.gold {
            let subjects: FnvHashSet<Symbol> = ds
                .sources
                .iter()
                .filter(|s| gold.source.contains(&s.url))
                .flat_map(|s| s.facts.iter().map(|f| f.subject))
                .collect();
            for &e in &gold.entities {
                assert!(
                    subjects.contains(&e),
                    "{}: gold entity missing from source scope of {}",
                    ds.name,
                    gold.source
                );
            }
        }
    }
}

/// Homogeneous entities form a superset of all gold entities (planted
/// verticals are, by construction, annotator-friendly).
#[test]
fn gold_entities_are_homogeneous() {
    for ds in all_datasets() {
        for gold in &ds.truth.gold {
            for &e in &gold.entities {
                assert!(
                    ds.truth.is_homogeneous(e),
                    "{}: gold entity not marked homogeneous",
                    ds.name
                );
            }
        }
    }
}

/// No generator emits empty sources, and every source URL is non-domain or
/// domain but well-formed (reparsable).
#[test]
fn sources_are_nonempty_and_urls_reparse() {
    for ds in all_datasets() {
        assert!(!ds.sources.is_empty(), "{}", ds.name);
        for s in &ds.sources {
            assert!(!s.is_empty(), "{}: empty source {}", ds.name, s.url);
            let reparsed = midas_weburl::SourceUrl::parse(s.url.as_str()).unwrap();
            assert_eq!(reparsed, s.url, "{}: URL not canonical", ds.name);
        }
    }
}

/// Generation is deterministic: same config → byte-identical fact counts,
/// KB sizes, and gold structure.
#[test]
fn generators_are_deterministic() {
    let a = all_datasets();
    let b = all_datasets();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.total_facts(), y.total_facts(), "{}", x.name);
        assert_eq!(x.kb.len(), y.kb.len(), "{}", x.name);
        assert_eq!(x.truth.gold.len(), y.truth.gold.len(), "{}", x.name);
        for (gx, gy) in x.truth.gold.iter().zip(&y.truth.gold) {
            assert_eq!(gx.entities, gy.entities, "{}", x.name);
            assert_eq!(gx.source, gy.source, "{}", x.name);
        }
    }
}

/// Gold slices carry at least one new fact w.r.t. the dataset's KB — a gold
/// slice that the KB already covers would be meaningless.
#[test]
fn gold_slices_have_new_facts() {
    for ds in all_datasets() {
        for gold in &ds.truth.gold {
            let entity_set: FnvHashSet<Symbol> = gold.entities.iter().copied().collect();
            let new: usize = ds
                .sources
                .iter()
                .filter(|s| gold.source.contains(&s.url))
                .flat_map(|s| s.facts.iter())
                .filter(|f| entity_set.contains(&f.subject) && ds.kb.is_new(f))
                .count();
            assert!(
                new > 0,
                "{}: gold slice {} has no new facts",
                ds.name,
                gold.description
            );
        }
    }
}

/// The stats of every dataset are self-consistent.
#[test]
fn stats_are_consistent() {
    for ds in all_datasets() {
        let stats = ds.stats();
        assert!(stats.num_facts > 0);
        assert!(stats.num_predicates > 0);
        assert!(stats.num_subjects > 0);
        assert_eq!(stats.num_urls, ds.sources.len());
        assert!(stats.num_facts <= ds.total_facts(), "dedup only shrinks");
    }
}
