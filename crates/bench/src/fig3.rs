//! Figure 3 — top MIDAS slices for augmenting Freebase from a
//! KnowledgeVault-like corpus.
//!
//! The harness runs the full framework over the generated corpus and prints
//! the highest-profit slices with the two ratios the paper reports — the
//! fraction of new facts inside the slice and inside its whole web source —
//! next to the paper's published values.

use crate::experiments::ExperimentScale;
use midas_core::{DiscoveredSlice, MidasConfig, SourceFacts};
use midas_eval::report::pct;
use midas_eval::{run_midas_framework, Table};
use midas_extract::kvault::{generate, KVaultConfig, FIG3_ROWS};
use midas_extract::Dataset;

fn source_new_ratio(ds: &Dataset, slice: &DiscoveredSlice) -> f64 {
    let domain = slice.source.domain();
    let sources: Vec<&SourceFacts> = ds
        .sources
        .iter()
        .filter(|s| domain.contains(&s.url))
        .collect();
    let total: usize = sources.iter().map(|s| s.len()).sum();
    let new: usize = sources
        .iter()
        .map(|s| ds.kb.count_new(s.facts.iter()))
        .sum();
    if total == 0 {
        0.0
    } else {
        new as f64 / total as f64
    }
}

/// Runs the Figure 3 experiment.
pub fn run(scale: ExperimentScale) -> String {
    let gen_scale = match scale {
        ExperimentScale::Quick => 0.3,
        ExperimentScale::Full => 1.0,
    };
    let ds = generate(&KVaultConfig {
        scale: gen_scale,
        seed: 42,
    });
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let result = run_midas_framework(&MidasConfig::default(), ds.sources.clone(), &ds.kb, threads);

    let mut t = Table::new(
        "Figure 3: top slices from MIDAS targeting Freebase augmentation",
        &[
            "Slice (discovered)",
            "Web source",
            "new/slice",
            "new/source",
            "paper new/slice",
            "paper new/source",
        ],
    );
    for slice in result.slices.iter().take(FIG3_ROWS.len()) {
        // Attribute the discovered slice to the gold row whose source
        // contains it (for the paper-reference columns).
        let paper = FIG3_ROWS.iter().find(|r| {
            midas_weburl::SourceUrl::parse(r.url)
                .map(|u| u.domain().contains(&slice.source))
                .unwrap_or(false)
        });
        t.row(&[
            paper.map_or_else(|| "(unplanted)".to_owned(), |r| r.description.to_owned()),
            slice.source.to_string(),
            pct(slice.new_ratio()),
            pct(source_new_ratio(&ds, slice)),
            paper.map_or_else(|| "-".to_owned(), |r| pct(r.slice_new_ratio)),
            paper.map_or_else(|| "-".to_owned(), |r| pct(r.source_new_ratio)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The framework recovers all six planted verticals as its top slices,
    /// with new-fact ratios near the paper's targets.
    #[test]
    fn recovers_all_six_verticals() {
        let ds = generate(&KVaultConfig {
            scale: 0.2,
            seed: 5,
        });
        let result = run_midas_framework(&MidasConfig::default(), ds.sources.clone(), &ds.kb, 2);
        assert!(result.slices.len() >= 6, "got {}", result.slices.len());
        let mut matched = 0;
        for gold in &ds.truth.gold {
            if result
                .slices
                .iter()
                .take(10)
                .any(|s| gold.jaccard_entities(&s.entities) >= 0.95)
            {
                matched += 1;
            }
        }
        assert!(matched >= 5, "recovered only {matched} of 6 verticals");
        // Slice new-ratios sit in the paper's 0.6–0.9 band.
        for s in result.slices.iter().take(6) {
            let r = s.new_ratio();
            assert!((0.5..=0.95).contains(&r), "slice ratio out of band: {r}");
        }
    }
}
