//! Shared experiment drivers.

use midas_baselines::{AggCluster, Greedy, Naive};
use midas_core::{DiscoveredSlice, MidasConfig, SourceFacts};
use midas_eval::runner::{
    merge_by_domain, run_detector_per_source, run_midas_framework, RunResult,
};
use midas_kb::KnowledgeBase;

/// Scale selection for the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Small, interactive runs (default; minutes for the whole suite).
    Quick,
    /// Paper-shaped scale (longer runs; pass `--full`).
    Full,
}

impl ExperimentScale {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            ExperimentScale::Full
        } else {
            ExperimentScale::Quick
        }
    }
}

/// If `--out DIR` was passed, persists `content` as `DIR/<name>.txt` so a
/// reproduction run leaves artefacts on disk. Prints where it wrote.
pub fn maybe_write_artifact(name: &str, content: &str) {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(dir) = args.next() {
                let _ = std::fs::create_dir_all(&dir);
                let path = std::path::Path::new(&dir).join(format!("{name}.txt"));
                match std::fs::write(&path, content) {
                    Ok(()) => eprintln!("[artifact written to {}]", path.display()),
                    Err(e) => eprintln!("[failed to write {}: {e}]", path.display()),
                }
            }
            return;
        }
    }
}

/// The result of running one algorithm on one corpus.
#[derive(Debug)]
pub struct AlgoOutcome {
    /// Algorithm name ("midas", "greedy", "aggcluster", "naive").
    pub name: &'static str,
    /// The timed run.
    pub run: RunResult,
}

/// Runs all four §IV-B algorithms on a corpus:
///
/// * MIDAS — the multi-source framework over the page-level corpus;
/// * GREEDY and AGGCLUSTER — per domain-merged source (their most
///   favourable granularity, as in the paper's per-web-source setting);
/// * NAIVE — whole domain-merged sources ranked by new-fact count.
pub fn run_four_algorithms(
    config: &MidasConfig,
    sources: &[SourceFacts],
    kb: &KnowledgeBase,
    threads: usize,
) -> Vec<AlgoOutcome> {
    let merged = merge_by_domain(sources);
    let mut out = Vec::with_capacity(4);

    out.push(AlgoOutcome {
        name: "midas",
        run: run_midas_framework(config, sources.to_vec(), kb, threads),
    });

    let greedy = Greedy::new(config.cost);
    out.push(AlgoOutcome {
        name: "greedy",
        run: run_detector_per_source(&greedy, &merged, kb),
    });

    let agg = AggCluster::new(config.cost);
    out.push(AlgoOutcome {
        name: "aggcluster",
        run: run_detector_per_source(&agg, &merged, kb),
    });

    let naive = Naive::new(config.cost);
    let mut naive_run = run_detector_per_source(&naive, &merged, kb);
    // NAIVE ranks by new-fact count, not profit.
    naive_run
        .slices
        .sort_by_key(|s| std::cmp::Reverse(s.num_new_facts));
    out.push(AlgoOutcome {
        name: "naive",
        run: naive_run,
    });

    out
}

/// The slices an operator would act on: positive profit for the
/// profit-driven algorithms; NAIVE (which has no meaningful profit
/// semantics) returns sources with any new fact.
pub fn actionable(outcome: &AlgoOutcome) -> Vec<DiscoveredSlice> {
    match outcome.name {
        "naive" => outcome
            .run
            .slices
            .iter()
            .filter(|s| s.num_new_facts > 0)
            .cloned()
            .collect(),
        _ => outcome.run.positive(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_core::fixtures::skyrocket_pages;
    use midas_kb::Interner;

    #[test]
    fn all_four_run_on_the_running_example() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let cfg = MidasConfig::running_example();
        let outcomes = run_four_algorithms(&cfg, &pages, &kb, 1);
        assert_eq!(outcomes.len(), 4);
        let names: Vec<&str> = outcomes.iter().map(|o| o.name).collect();
        assert_eq!(names, vec!["midas", "greedy", "aggcluster", "naive"]);
        let midas = &outcomes[0];
        assert_eq!(midas.run.slices.len(), 1);
        assert!(actionable(midas).len() == 1);
        // Greedy on the merged domain finds one slice; naive one source.
        assert_eq!(outcomes[1].run.slices.len(), 1);
        assert_eq!(outcomes[3].run.slices.len(), 1);
    }
}
