//! Regenerates Figure 11: accuracy and runtime of MIDAS, GREEDY, AGGCLUSTER
//! (and NAIVE) on the §IV-D synthetic generator. Pass `--full` for the
//! paper's full parameter sweeps.

use midas_bench::{fig11, ExperimentScale};

fn main() {
    let report = fig11::run(ExperimentScale::from_args());
    print!("{report}");
    midas_bench::experiments::maybe_write_artifact("fig11_synthetic", &report);
}
