//! Regenerates Figure 7: statistics of the real-world datasets (generated
//! at reduced scale). Pass `--full` for larger corpora.

use midas_bench::{fig7, ExperimentScale};

fn main() {
    let report = fig7::run(ExperimentScale::from_args());
    print!("{report}");
    midas_bench::experiments::maybe_write_artifact("fig7_stats", &report);
}
