//! Incremental-vs-rebuild timing probe for the augmentation loop.
//!
//! Drives two lock-stepped `Augmenter`s to saturation on a corpus where each
//! round accepts one small vertical (so the dirty leaves of the next round
//! have *sparse* changes against a large, already-known bulk lattice). Every
//! round measures three paths:
//!
//! - `rebuild`: from-scratch `suggest_fresh` (no cache at all);
//! - `noreuse`: the PR 4 incremental path — task replay for clean subtrees,
//!   but dirty leaves rebuild their hierarchies cold (forced in-process via
//!   `MIDAS_NO_WARM_HIERARCHY=1`, which `run_incremental` reads per call);
//! - `warm`: the full warm-hierarchy path — dirty leaves patch their
//!   retained `SliceHierarchy` in place instead of rebuilding it.
//!
//! All three reports are asserted bit-identical before any timing is
//! trusted, and warm rounds must actually warm-patch (`hierarchies_reused`
//! strictly positive). `scripts/bench_smoke.sh` gates on the warm-round
//! totals: the warm path must beat the no-reuse incremental path by the
//! ratio it enforces.

use midas_core::telemetry;
use midas_core::{Augmenter, FrameworkReport, MidasConfig, SourceFacts};
use midas_kb::{Fact, Interner, KnowledgeBase};
use midas_weburl::SourceUrl;
use std::time::Instant;

const NO_WARM_ENV: &str = "MIDAS_NO_WARM_HIERARCHY";

/// `domains` domains of `pages` pages. Each page carries `entities` bulk
/// entities (5 properties each — a rich per-leaf lattice) whose facts are
/// pre-loaded into the knowledge base, plus a small unknown vertical of
/// descending richness per domain. Accepting a vertical changes only its
/// few entities, so the next round's dirty leaves are warm-patchable with
/// a handful of node re-evaluations while a cold path re-enumerates the
/// whole bulk lattice.
fn corpus(
    t: &mut Interner,
    domains: usize,
    pages: usize,
    entities: usize,
) -> (Vec<SourceFacts>, KnowledgeBase) {
    let mut sources = Vec::new();
    let mut kb = KnowledgeBase::new();
    for d in 0..domains {
        let vert = 8usize.saturating_sub(d).max(2);
        for p in 0..pages {
            let mut facts = Vec::with_capacity(entities * 5 + vert * 3);
            for e in 0..entities {
                let name = format!("b{d}_{p}_{e}");
                let known = [
                    Fact::intern(t, &name, "kind", &format!("bulk{d}")),
                    Fact::intern(t, &name, "group", &format!("g{}", e % 10)),
                    Fact::intern(t, &name, "color", &format!("c{}", e % 7)),
                    Fact::intern(t, &name, "shape", &format!("s{}", e % 5)),
                    Fact::intern(t, &name, "serial", &format!("bs{d}_{p}_{e}")),
                ];
                for f in known {
                    kb.insert(f);
                    facts.push(f);
                }
            }
            for e in 0..vert {
                let name = format!("v{d}_{p}_{e}");
                facts.push(Fact::intern(t, &name, "kind", &format!("vertical{d}")));
                facts.push(Fact::intern(t, &name, "site", &format!("dir{d}")));
                facts.push(Fact::intern(t, &name, "serial", &format!("vs{d}_{p}_{e}")));
            }
            let url = SourceUrl::parse(&format!("http://domain{d}.example.org/dir/page{p}.html"))
                .expect("static url");
            sources.push(SourceFacts::new(url, facts));
        }
    }
    (sources, kb)
}

fn assert_identical(left: &FrameworkReport, right: &FrameworkReport, what: &str, round: usize) {
    assert_eq!(
        left.slices, right.slices,
        "round {round}: {what} diverged from rebuild"
    );
    assert_eq!(left.quarantine.len(), right.quarantine.len());
}

/// Per-round reconciliation of the warm run's [`FrameworkReport`] against
/// the telemetry registry: the counter deltas across the warm suggest must
/// equal the report's own fields exactly (the framework records both from
/// the same events), and the phase histograms must have advanced.
fn reconcile(round: usize, warm: &FrameworkReport, before: &telemetry::Snapshot) {
    let after = telemetry::snapshot();
    assert!(
        after.dominates(before),
        "round {round}: counters regressed between snapshots"
    );
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(
        delta("framework.detect_calls"),
        warm.detect_calls as u64,
        "round {round}: framework.detect_calls does not reconcile with the report"
    );
    assert_eq!(
        delta("framework.tasks_reused"),
        warm.reused as u64,
        "round {round}: framework.tasks_reused does not reconcile with the report"
    );
    assert_eq!(
        delta("framework.hierarchies_warm_reused"),
        warm.hierarchies_reused as u64,
        "round {round}: framework.hierarchies_warm_reused does not reconcile"
    );
    assert_eq!(
        delta("framework.quarantined"),
        warm.quarantine.len() as u64,
        "round {round}: framework.quarantined does not reconcile with the report"
    );
    let phase_count = |name: &str| after.histogram(name).map_or(0, |h| h.count);
    for phase in [
        "framework.phase.shard_ns",
        "framework.phase.detect_ns",
        "framework.phase.consolidate_ns",
    ] {
        assert!(
            phase_count(phase) > 0,
            "round {round}: {phase} recorded no samples with telemetry on"
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut threads = 16usize;
    let mut domains = 4usize;
    let mut pages = 10usize;
    let mut entities = 120usize;
    let mut metrics_json: Option<String> = None;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--threads" => threads = value("--threads").parse().expect("thread count"),
            "--domains" => domains = value("--domains").parse().expect("domain count"),
            "--pages" => pages = value("--pages").parse().expect("page count"),
            "--entities" => entities = value("--entities").parse().expect("entity count"),
            "--metrics-json" => metrics_json = Some(value("--metrics-json")),
            other => panic!(
                "unknown argument {other:?} \
                 (usage: augment_rounds [--threads N] [--domains N] [--pages N] \
                 [--entities N] [--metrics-json PATH])"
            ),
        }
    }
    if metrics_json.is_some() {
        telemetry::enable();
    }
    assert!(
        std::env::var_os(NO_WARM_ENV).is_none(),
        "unset {NO_WARM_ENV} before running: the bench toggles it per path"
    );

    let mut terms = Interner::new();
    let (sources, kb) = corpus(&mut terms, domains, pages, entities);
    let num_sources = sources.len();

    let config = MidasConfig::running_example().with_threads(threads);
    let mut warm_aug =
        Augmenter::new(config.clone(), sources.clone(), kb.clone()).with_threads(threads);
    let mut noreuse_aug = Augmenter::new(config, sources, kb).with_threads(threads);

    let (mut warm_ms_total, mut noreuse_ms_total, mut fresh_ms_total) = (0.0f64, 0.0f64, 0.0f64);
    let mut round = 0usize;
    loop {
        round += 1;

        let start = Instant::now();
        let fresh = warm_aug.suggest_fresh();
        let fresh_ms = start.elapsed().as_secs_f64() * 1e3;

        // PR 4 path: incremental task replay, cold hierarchy rebuild for
        // every dirty leaf. The env toggle is read per `run_incremental`
        // call, so flipping it here only affects this suggest.
        std::env::set_var(NO_WARM_ENV, "1");
        let start = Instant::now();
        let noreuse = noreuse_aug.suggest_report();
        let noreuse_ms = start.elapsed().as_secs_f64() * 1e3;
        std::env::remove_var(NO_WARM_ENV);
        assert_eq!(
            noreuse.hierarchies_reused, 0,
            "round {round}: {NO_WARM_ENV} must force cold hierarchy rebuilds"
        );

        let before = telemetry::enabled().then(telemetry::snapshot);
        let start = Instant::now();
        let warm = warm_aug.suggest_report();
        let warm_ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(before) = &before {
            reconcile(round, &warm, before);
        }

        assert_identical(&warm, &fresh, "warm incremental", round);
        assert_identical(&noreuse, &fresh, "no-reuse incremental", round);
        if round > 1 {
            assert!(warm.reused > 0, "warm round {round} replayed nothing");
            assert!(
                warm.hierarchies_reused > 0,
                "warm round {round} patched no hierarchy"
            );
            warm_ms_total += warm_ms;
            noreuse_ms_total += noreuse_ms;
            fresh_ms_total += fresh_ms;
        }
        let best = warm.slices.iter().find(|s| s.profit > 0.0).cloned();
        let accepted = best.is_some();
        println!(
            "{{\"bench\":\"augment_rounds/round_{round}\",\"sources\":{num_sources},\
             \"threads\":{threads},\"warm_ms\":{warm_ms:.3},\"noreuse_ms\":{noreuse_ms:.3},\
             \"rebuild_ms\":{fresh_ms:.3},\"detect_calls\":{},\"reused\":{},\
             \"hierarchies_reused\":{},\"accepted\":{accepted}}}",
            warm.detect_calls, warm.reused, warm.hierarchies_reused,
        );
        let Some(best) = best else { break };
        let step = warm_aug.accept(&best);
        let mirror = noreuse_aug.accept(&best);
        assert_eq!(
            step.facts_added, mirror.facts_added,
            "round {round}: the two augmenters fell out of lockstep"
        );
        if step.facts_added == 0 {
            break;
        }
    }
    assert!(
        round >= 4,
        "corpus saturated after {round} rounds; need >=4 for a warm-round comparison"
    );
    let ratio = noreuse_ms_total / warm_ms_total.max(1e-9);
    println!(
        "{{\"bench\":\"augment_rounds/warm_total\",\"sources\":{num_sources},\
         \"threads\":{threads},\"rounds\":{round},\"warm_ms\":{warm_ms_total:.3},\
         \"noreuse_ms\":{noreuse_ms_total:.3},\"rebuild_ms\":{fresh_ms_total:.3},\
         \"warm_over_noreuse\":{ratio:.2}}}"
    );
    if let Some(path) = metrics_json {
        telemetry::write_json(&path).expect("write --metrics-json report");
        eprintln!("metrics written to {path}");
    }
    // File trace sinks are buffered; drain them before exit so a
    // `MIDAS_TRACE=spans:FILE` run of this binary leaves a complete JSONL.
    telemetry::flush_trace();
}
