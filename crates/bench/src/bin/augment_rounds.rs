//! Incremental-vs-rebuild timing probe for the augmentation loop.
//!
//! Drives `Augmenter` to saturation on a multi-vertical corpus where each
//! round accepts one vertical's slice (so only that vertical's subtree is
//! dirty for the next round). Every round runs both the warm incremental
//! `suggest_report` and a from-scratch `suggest_fresh` rebuild, asserts the
//! two are identical, and prints one JSON line per round plus warm-round
//! totals. `scripts/bench_smoke.sh` gates on the totals: warm incremental
//! rounds must beat their from-scratch rebuilds.

use midas_core::{Augmenter, FrameworkReport, MidasConfig, SourceFacts};
use midas_kb::{Fact, Interner, KnowledgeBase};
use midas_weburl::SourceUrl;
use std::time::Instant;

/// `domains` single-vertical domains of descending richness, each split
/// over `pages` pages. Richness descends so the loop accepts the verticals
/// in domain order, one per round, before saturating.
fn corpus(t: &mut Interner, domains: usize, pages: usize, entities: usize) -> Vec<SourceFacts> {
    let mut sources = Vec::new();
    for d in 0..domains {
        let per_page = entities - d * (entities / (2 * domains));
        for p in 0..pages {
            let mut facts = Vec::with_capacity(per_page * 4);
            for e in 0..per_page {
                let name = format!("e{d}_{p}_{e}");
                facts.push(Fact::intern(t, &name, "kind", &format!("vertical{d}")));
                facts.push(Fact::intern(t, &name, "site", &format!("dir{d}")));
                facts.push(Fact::intern(t, &name, "group", &format!("g{d}_{}", e % 4)));
                facts.push(Fact::intern(t, &name, "serial", &format!("s{d}_{p}_{e}")));
            }
            let url = SourceUrl::parse(&format!("http://domain{d}.example.org/dir/page{p}.html"))
                .expect("static url");
            sources.push(SourceFacts::new(url, facts));
        }
    }
    sources
}

fn assert_identical(incr: &FrameworkReport, fresh: &FrameworkReport, round: usize) {
    assert_eq!(
        incr.slices, fresh.slices,
        "round {round}: incremental diverged from rebuild"
    );
    assert_eq!(incr.quarantine.len(), fresh.quarantine.len());
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut threads = 16usize;
    let mut domains = 8usize;
    let mut pages = 12usize;
    let mut entities = 120usize;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--threads" => threads = value("--threads").parse().expect("thread count"),
            "--domains" => domains = value("--domains").parse().expect("domain count"),
            "--pages" => pages = value("--pages").parse().expect("page count"),
            "--entities" => entities = value("--entities").parse().expect("entity count"),
            other => panic!(
                "unknown argument {other:?} \
                 (usage: augment_rounds [--threads N] [--domains N] [--pages N] [--entities N])"
            ),
        }
    }

    let mut terms = Interner::new();
    let sources = corpus(&mut terms, domains, pages, entities);
    let num_sources = sources.len();

    let config = MidasConfig::running_example().with_threads(threads);
    let mut aug = Augmenter::new(config, sources, KnowledgeBase::new()).with_threads(threads);

    let (mut warm_incr_ms, mut warm_fresh_ms) = (0.0f64, 0.0f64);
    let mut round = 0usize;
    loop {
        round += 1;
        let start = Instant::now();
        let fresh = aug.suggest_fresh();
        let fresh_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let incr = aug.suggest_report();
        let incr_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_identical(&incr, &fresh, round);
        if round > 1 {
            assert!(incr.reused > 0, "warm round {round} replayed nothing");
            warm_incr_ms += incr_ms;
            warm_fresh_ms += fresh_ms;
        }
        let best = incr.slices.iter().find(|s| s.profit > 0.0).cloned();
        let accepted = best.is_some();
        println!(
            "{{\"bench\":\"augment_rounds/round_{round}\",\"sources\":{num_sources},\
             \"threads\":{threads},\"incremental_ms\":{incr_ms:.3},\"rebuild_ms\":{fresh_ms:.3},\
             \"detect_calls\":{},\"reused\":{},\"accepted\":{accepted}}}",
            incr.detect_calls, incr.reused,
        );
        let Some(best) = best else { break };
        let step = aug.accept(&best);
        if step.facts_added == 0 {
            break;
        }
    }
    assert!(
        round >= 4,
        "corpus saturated after {round} rounds; need >=4 for a warm-round comparison"
    );
    println!(
        "{{\"bench\":\"augment_rounds/warm_total\",\"sources\":{num_sources},\
         \"threads\":{threads},\"rounds\":{round},\"incremental_ms\":{warm_incr_ms:.3},\
         \"rebuild_ms\":{warm_fresh_ms:.3}}}"
    );
}
