//! Regenerates Figure 9: PR curves and precision/recall/F-measure against
//! knowledge bases of varying coverage on the slim corpora. Pass `--full`
//! for the larger corpora.

use midas_bench::{fig9, ExperimentScale};

fn main() {
    let report = fig9::run(ExperimentScale::from_args());
    print!("{report}");
    midas_bench::experiments::maybe_write_artifact("fig9_coverage", &report);
}
