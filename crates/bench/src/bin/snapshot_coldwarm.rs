//! Cold-vs-warm probe for the corpus snapshot cache.
//!
//! Builds the same 240-source corpus as the `peak_rss` probe, writes it as
//! TSV, and times the two input paths an operator actually experiences:
//!
//! * **cold** — parse the TSV and construct every round-0 fact table, the
//!   work a run without `--snapshot-cache` performs before its first
//!   detection round;
//! * **warm** — memory-map the snapshot a previous run left behind and
//!   reassemble the corpus zero-copy.
//!
//! Both paths then drive the full MIDAS framework and the probe asserts the
//! reports are bit-identical (same slices, same profit bits), so the
//! speedup it prints is never bought with a result change. Output is one
//! JSON line consumed by `scripts/bench_smoke.sh`, which gates on
//! `speedup >= 5`.

use criterion::peak_rss_kb;
use midas_cli::snapshot_cache::load_inputs_cached;
use midas_core::{FactTable, Framework, FrameworkReport, MidasAlg, MidasConfig, SourceFacts};
use midas_kb::{Fact, Interner, KnowledgeBase};
use midas_weburl::SourceUrl;
use std::collections::BTreeMap;
use std::time::Instant;

/// 12 domains × 20 pages = 240 sources (the `peak_rss` corpus shape).
fn corpus(t: &mut Interner, entities: usize) -> Vec<SourceFacts> {
    let mut sources = Vec::new();
    for d in 0..12 {
        for p in 0..20 {
            let mut facts = Vec::with_capacity(entities * 6);
            for e in 0..entities {
                let name = format!("e{d}_{p}_{e}");
                facts.push(Fact::intern(t, &name, "kind", &format!("vertical{d}")));
                facts.push(Fact::intern(t, &name, "site", &format!("dir{d}")));
                facts.push(Fact::intern(t, &name, "group", &format!("g{}", e % 4)));
                facts.push(Fact::intern(t, &name, "band", &format!("b{}", e % 8)));
                facts.push(Fact::intern(t, &name, "tier", &format!("t{}", e % 16)));
                facts.push(Fact::intern(t, &name, "serial", &format!("s{d}_{p}_{e}")));
            }
            let url = SourceUrl::parse(&format!("http://domain{d}.example.org/dir/page{p}.html"))
                .expect("static url");
            sources.push(SourceFacts::new(url, facts));
        }
    }
    sources
}

fn run_framework(
    config: &MidasConfig,
    sources: Vec<SourceFacts>,
    kb: &KnowledgeBase,
    tables: Option<&BTreeMap<SourceUrl, FactTable>>,
) -> FrameworkReport {
    let alg = MidasAlg::new(config.clone());
    let fw = Framework::new(&alg, config.cost).with_threads(config.threads);
    match tables {
        Some(t) => fw.run_with_tables(sources, kb, t),
        None => fw.run(sources, kb),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut entities = 250usize;
    let mut threads = 1usize;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--entities" => entities = value("--entities").parse().expect("entity count"),
            "--threads" => threads = value("--threads").parse().expect("thread count"),
            other => panic!(
                "unknown argument {other:?} (usage: snapshot_coldwarm [--entities N] [--threads N])"
            ),
        }
    }

    let dir = std::env::temp_dir().join(format!("midas_snapshot_coldwarm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let facts_path = dir.join("facts.tsv");
    let cache_dir = dir.join("cache");
    let cache_s = cache_dir.to_str().expect("utf-8 path");
    let facts_s = facts_path.to_str().expect("utf-8 path");

    {
        let mut terms = Interner::new();
        let sources = corpus(&mut terms, entities);
        assert!(sources.len() >= 240, "corpus shrank: {}", sources.len());
        let f = std::fs::File::create(&facts_path).expect("create facts file");
        midas_cli::facts_io::write_facts(std::io::BufWriter::new(f), &terms, &sources)
            .expect("write facts");
    }

    // Cold path: parse + per-source fact-table construction, no cache.
    let cold_start = Instant::now();
    let cold = load_inputs_cached(facts_s, None, false, None, None).expect("cold load");
    let cold_tables: BTreeMap<SourceUrl, FactTable> = cold
        .sources
        .iter()
        .map(|s| (s.url.clone(), FactTable::build(s, &cold.kb)))
        .collect();
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;

    // Populate the cache (miss: parse + build + snapshot write)...
    let miss_start = Instant::now();
    let miss = load_inputs_cached(facts_s, None, false, Some(cache_s), None).expect("miss load");
    assert!(
        miss.notes.iter().any(|n| n.contains("write")),
        "first cached run must write the snapshot: {:?}",
        miss.notes
    );
    let miss_ms = miss_start.elapsed().as_secs_f64() * 1e3;
    drop(miss);

    // ...then measure the warm path: mmap + zero-copy reassembly.
    let warm_start = Instant::now();
    let warm = load_inputs_cached(facts_s, None, false, Some(cache_s), None).expect("warm load");
    let warm_ms = warm_start.elapsed().as_secs_f64() * 1e3;
    assert!(
        warm.notes.iter().any(|n| n.contains("hit")),
        "second cached run must hit: {:?}",
        warm.notes
    );
    let warm_tables = warm.tables.expect("hit returns tables");
    assert!(
        warm_tables.values().all(FactTable::is_mapped),
        "warm tables must borrow the mapping"
    );

    // Bit-identity: the two paths must produce the same report.
    let config = MidasConfig::running_example().with_threads(threads);
    let cold_report = run_framework(&config, cold.sources, &cold.kb, Some(&cold_tables));
    let warm_report = run_framework(&config, warm.sources, &warm.kb, Some(&warm_tables));
    assert_eq!(cold_report.slices.len(), warm_report.slices.len());
    for (a, b) in cold_report.slices.iter().zip(&warm_report.slices) {
        assert_eq!(a.source, b.source);
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.num_facts, b.num_facts);
        assert_eq!(a.num_new_facts, b.num_new_facts);
        assert_eq!(a.profit.to_bits(), b.profit.to_bits(), "profit bits");
    }

    let speedup = cold_ms / warm_ms.max(1e-3);
    println!(
        "{{\"bench\":\"snapshot/coldwarm\",\"sources\":240,\"entities\":{entities},\
         \"cold_ms\":{cold_ms:.1},\"miss_ms\":{miss_ms:.1},\"warm_ms\":{warm_ms:.1},\
         \"speedup\":{speedup:.1},\"slices\":{},\"identical\":true,\"peak_rss_kb\":{}}}",
        cold_report.slices.len(),
        peak_rss_kb(),
    );

    let _ = std::fs::remove_dir_all(&dir);
}
