//! Regenerates Figure 3: top MIDAS slices for augmenting Freebase from a
//! KnowledgeVault-like corpus. Pass `--full` for the paper-shaped scale.

use midas_bench::{fig3, ExperimentScale};

fn main() {
    let report = fig3::run(ExperimentScale::from_args());
    print!("{report}");
    midas_bench::experiments::maybe_write_artifact("fig3_kvault", &report);
}
