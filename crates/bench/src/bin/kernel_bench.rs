//! Scalar-vs-dispatched microbenches for the extent kernel layer.
//!
//! Times the block kernels (`and_into`+popcount, `or_into`, multi-way
//! `union_into`, standalone popcount) at dense ≥64k-entity universes,
//! directly against the two dispatch tables: the portable scalar kernels
//! and whatever `midas_core::extent::kernels::active()` selects on this
//! host (AVX2 where available, scalar otherwise). Inputs are identical
//! between the two, and every benchmark first asserts the dispatched
//! kernel's counts equal the scalar kernel's — the speedup is measured on
//! provably bit-identical work.
//!
//! One JSON line per (bench, kernel) pair is appended to
//! `MIDAS_BENCH_JSON` in the criterion-shim schema (`median_ns` etc.), so
//! `scripts/bench_compare.py` tracks them PR-over-PR. A final
//! `kernels/speedup/...` line per universe carries the scalar÷dispatched
//! median ratio (no `median_ns` field — it is a gate input for
//! `scripts/bench_smoke.sh`, not a microbench).

use criterion::{black_box, calib_ns, peak_rss_kb};
use midas_core::extent::kernels::{active, scalar_ops, KernelOps};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::Instant;

/// Deterministic xorshift64* block fill (the differential suite's
/// generator): every 7th word forced empty or full so the dense edge cases
/// stay represented at benchmark sizes.
fn blocks(mut seed: u64, words: usize) -> Vec<u64> {
    (0..words)
        .map(|i| match i % 7 {
            0 => 0,
            1 => u64::MAX,
            _ => {
                seed ^= seed >> 12;
                seed ^= seed << 25;
                seed ^= seed >> 27;
                seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
            }
        })
        .collect()
}

/// Median per-iteration nanoseconds over `samples` batches, batch size
/// calibrated so one batch costs ≥ ~0.5 ms (the criterion shim's scheme).
fn time_ns(samples: usize, mut f: impl FnMut() -> u32) -> (f64, f64, f64, f64) {
    const TARGET_NS: f64 = 500_000.0;
    let mut batch: u64 = 1;
    let mut per_iter;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        per_iter = elapsed / batch as f64;
        if elapsed >= TARGET_NS / 4.0 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let iters = (TARGET_NS / per_iter).round().max(1.0) as u64;
    let mut durations: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    durations.sort_by(|a, b| a.total_cmp(b));
    let median = durations[durations.len() / 2];
    let mean = durations.iter().sum::<f64>() / durations.len() as f64;
    (median, mean, durations[0], durations[durations.len() - 1])
}

fn append_json(line: &str) {
    let Ok(path) = std::env::var("MIDAS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut fh| fh.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: could not append to {path}: {e}");
    }
}

fn report(name: &str, samples: usize, stats: (f64, f64, f64, f64)) {
    let (median, mean, min, max) = stats;
    println!("{name:<52} median {median:>10.1} ns  [{min:.1} .. {max:.1}]");
    append_json(&format!(
        "{{\"bench\":{name:?},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{samples},\"calib_ns\":{:.4},\"peak_rss_kb\":{}}}\n",
        calib_ns(),
        peak_rss_kb()
    ));
}

/// The four benched kernel workloads over one universe's inputs. Returns
/// the `and_popcount` median so `main` can form the headline speedup.
fn bench_table(
    label: &str,
    ops: &'static KernelOps,
    universe: usize,
    samples: usize,
    a: &[u64],
    b: &[u64],
    srcs: &[Vec<u64>],
) -> f64 {
    let words = a.len();
    let mut out = vec![0u64; words];
    let src_refs: Vec<&[u64]> = srcs.iter().map(|s| s.as_slice()).collect();

    let and_stats = time_ns(samples, || (ops.and_into)(&mut out, a, b));
    report(
        &format!("kernels/and_into_popcount/{universe}/{label}"),
        samples,
        and_stats,
    );
    report(
        &format!("kernels/or_into/{universe}/{label}"),
        samples,
        time_ns(samples, || (ops.or_into)(&mut out, a, b)),
    );
    report(
        &format!("kernels/union_into8/{universe}/{label}"),
        samples,
        time_ns(samples, || {
            out.iter_mut().for_each(|w| *w = 0);
            (ops.union_into)(&mut out, &src_refs)
        }),
    );
    report(
        &format!("kernels/popcount/{universe}/{label}"),
        samples,
        time_ns(samples, || (ops.count)(a)),
    );
    and_stats.0
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut samples = 30usize;
    let mut universes = vec![65_536usize, 262_144];
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--samples" => samples = value("--samples").parse().expect("sample count"),
            "--entities" => {
                universes = vec![value("--entities").parse().expect("entity count")];
            }
            other => panic!(
                "unknown argument {other:?} (usage: kernel_bench [--samples N] [--entities N])"
            ),
        }
    }
    if let Ok(n) = std::env::var("MIDAS_BENCH_SAMPLES") {
        if let Ok(n) = n.parse::<usize>() {
            if n > 0 {
                samples = n;
            }
        }
    }

    let scalar = scalar_ops();
    let dispatched = active();
    println!("dispatched kernel table: {}", dispatched.name);

    for &universe in &universes {
        let words = universe.div_ceil(64);
        let a = blocks(0x9e37_79b9_7f4a_7c15 ^ universe as u64, words);
        let b = blocks(0xd1b5_4a32_d192_ed03 ^ universe as u64, words);
        let srcs: Vec<Vec<u64>> = (0..8)
            .map(|i| {
                blocks(
                    0x94d0_49bb_1331_11eb ^ (i as u64) << 7 ^ universe as u64,
                    words,
                )
            })
            .collect();

        // The speedup must never be bought with a result change: check the
        // dispatched table against scalar on this exact input first.
        let mut s_out = vec![0u64; words];
        let mut d_out = vec![0u64; words];
        assert_eq!(
            (scalar.and_into)(&mut s_out, &a, &b),
            (dispatched.and_into)(&mut d_out, &a, &b),
            "dispatched and_into count diverged from scalar"
        );
        assert_eq!(s_out, d_out, "dispatched and_into blocks diverged");
        assert_eq!((scalar.count)(&a), (dispatched.count)(&a));

        let scalar_ns = bench_table("scalar", scalar, universe, samples, &a, &b, &srcs);
        let disp_ns = bench_table(
            dispatched.name,
            dispatched,
            universe,
            samples,
            &a,
            &b,
            &srcs,
        );
        let speedup = scalar_ns / disp_ns;
        println!(
            "kernels/speedup/and_into_popcount/{universe}: {speedup:.2}x \
             (scalar {scalar_ns:.1} ns -> {} {disp_ns:.1} ns)",
            dispatched.name
        );
        append_json(&format!(
            "{{\"bench\":\"kernels/speedup/and_into_popcount/{universe}\",\"kernel\":{:?},\"speedup\":{speedup:.3},\"scalar_ns\":{scalar_ns:.1},\"dispatched_ns\":{disp_ns:.1}}}\n",
            dispatched.name
        ));
    }
}
