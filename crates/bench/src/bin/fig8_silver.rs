//! Regenerates Figure 8: a snapshot of the silver standard over the 100
//! curated ReVerb-Slim sources. Pass `--full` for the larger corpus.

use midas_bench::{fig8, ExperimentScale};

fn main() {
    let report = fig8::run(ExperimentScale::from_args());
    print!("{report}");
    midas_bench::experiments::maybe_write_artifact("fig8_silver", &report);
}
