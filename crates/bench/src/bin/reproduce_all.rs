//! Runs every table/figure reproduction in sequence (quick scales by
//! default; pass `--full` for the paper-shaped scales).

use midas_bench::{fig10, fig11, fig3, fig7, fig8, fig9, ExperimentScale};
use std::time::Instant;

/// A named reproduction entry point.
type Experiment = (&'static str, fn(ExperimentScale) -> String);

fn main() {
    let scale = ExperimentScale::from_args();
    let experiments: &[Experiment] = &[
        ("Figure 7 (dataset statistics)", fig7::run),
        ("Figure 8 (silver standard)", fig8::run),
        ("Figure 3 (KnowledgeVault qualitative)", fig3::run),
        ("Figure 9 (coverage sweep)", fig9::run),
        ("Figure 10 (real-world shapes)", fig10::run),
        ("Figure 11 (synthetic sweeps)", fig11::run),
    ];
    let total = Instant::now();
    let mut combined = String::new();
    for (name, run) in experiments {
        let start = Instant::now();
        println!("###### {name} ######");
        let report = run(scale);
        print!("{report}");
        combined.push_str(&format!("###### {name} ######\n{report}\n"));
        println!("  [{name} took {:.1?}]\n", start.elapsed());
    }
    midas_bench::experiments::maybe_write_artifact("reproduce_all", &combined);
    println!("All experiments completed in {:.1?}.", total.elapsed());
}
