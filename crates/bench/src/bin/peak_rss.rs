//! Peak-RSS probe for the streaming shard pipeline.
//!
//! Runs the full framework over a ≥200-source synthetic corpus with a given
//! `--stream-window` and prints one JSON line carrying wall time and the
//! process's peak resident set size (`VmHWM`). The kernel's high-water mark
//! is process-wide and monotone, so window configurations must be compared
//! across *separate processes* — `scripts/bench_smoke.sh` invokes this
//! binary once per configuration.
//!
//! The corpus is shaped so per-shard transient state (fact table, hierarchy
//! extents, scratch bitmaps) dominates the resident corpus itself: the
//! window then visibly caps how many shards' state coexists.
//!
//! `--retain-invalid-extents` disables the eager release of invalidated
//! hierarchy nodes' extents, giving an A/B probe for that optimisation at a
//! fixed window (freed runs must not exceed retaining runs).

use criterion::peak_rss_kb;
use midas_core::{Framework, MidasAlg, MidasConfig, SourceFacts};
use midas_kb::{Fact, Interner, KnowledgeBase};
use midas_weburl::SourceUrl;
use std::time::Instant;

/// 12 domains × 20 pages = 240 sources; each page carries `entities`
/// entities with 5 shared dimensions plus one unique serial fact, so every
/// page builds a non-trivial hierarchy over a dense extent universe.
fn corpus(t: &mut Interner, entities: usize) -> Vec<SourceFacts> {
    let mut sources = Vec::new();
    for d in 0..12 {
        for p in 0..20 {
            let mut facts = Vec::with_capacity(entities * 6);
            for e in 0..entities {
                let name = format!("e{d}_{p}_{e}");
                facts.push(Fact::intern(t, &name, "kind", &format!("vertical{d}")));
                facts.push(Fact::intern(t, &name, "site", &format!("dir{d}")));
                facts.push(Fact::intern(t, &name, "group", &format!("g{}", e % 4)));
                facts.push(Fact::intern(t, &name, "band", &format!("b{}", e % 8)));
                facts.push(Fact::intern(t, &name, "tier", &format!("t{}", e % 16)));
                facts.push(Fact::intern(t, &name, "serial", &format!("s{d}_{p}_{e}")));
            }
            let url = SourceUrl::parse(&format!("http://domain{d}.example.org/dir/page{p}.html"))
                .expect("static url");
            sources.push(SourceFacts::new(url, facts));
        }
    }
    sources
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut window: Option<usize> = None;
    let mut threads = 16usize;
    let mut entities = 250usize;
    let mut retain_invalid = false;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--stream-window" => {
                window = Some(value("--stream-window").parse().expect("window count"))
            }
            "--threads" => threads = value("--threads").parse().expect("thread count"),
            "--entities" => entities = value("--entities").parse().expect("entity count"),
            "--retain-invalid-extents" => retain_invalid = true,
            other => panic!(
                "unknown argument {other:?} \
                 (usage: peak_rss [--stream-window N] [--threads N] [--entities N] \
                 [--retain-invalid-extents])"
            ),
        }
    }

    let mut terms = Interner::new();
    let sources = corpus(&mut terms, entities);
    let num_sources = sources.len();
    assert!(
        num_sources >= 200,
        "corpus too small for a meaningful RSS comparison: {num_sources} sources"
    );

    let config = MidasConfig::running_example()
        .with_threads(threads)
        .with_stream_window(window)
        .with_retain_invalid_extents(retain_invalid);
    let alg = MidasAlg::new(config.clone());
    let fw = Framework::new(&alg, config.cost)
        .with_threads(threads)
        .with_stream_window(window);
    let start = Instant::now();
    let report = fw.run(sources, &KnowledgeBase::new());
    let elapsed_ms = start.elapsed().as_millis();

    println!(
        "{{\"bench\":\"peak_rss/window_{}{}\",\"sources\":{},\"slices\":{},\"threads\":{},\"elapsed_ms\":{},\"peak_rss_kb\":{}}}",
        window.map_or_else(|| "unbounded".to_owned(), |w| w.to_string()),
        if retain_invalid { "_retain" } else { "" },
        num_sources,
        report.slices.len(),
        threads,
        elapsed_ms,
        peak_rss_kb(),
    );
}
