//! Regenerates Figure 10: top-k precision and execution time vs input ratio
//! on the ReVerb- and NELL-shaped corpora. Pass `--full` for larger scales.

use midas_bench::{fig10, ExperimentScale};

fn main() {
    let report = fig10::run(ExperimentScale::from_args());
    print!("{report}");
    midas_bench::experiments::maybe_write_artifact("fig10_realworld", &report);
}
