//! Figure 7 — statistics of the (generated) real-world datasets.

use crate::experiments::ExperimentScale;
use midas_eval::Table;
use midas_extract::{nell, reverb, slim};
use midas_kb::stats::humanize;

/// Regenerates the Figure 7 table.
pub fn run(scale: ExperimentScale) -> String {
    let (rv_scale, nl_scale, slim_scale) = match scale {
        ExperimentScale::Quick => (0.001, 0.002, 0.005),
        ExperimentScale::Full => (0.01, 0.01, 0.02),
    };

    let datasets = [
        (
            "ReVerb",
            reverb::generate(&reverb::ReverbConfig {
                scale: rv_scale,
                seed: 42,
            }),
            "Empty",
            "15M facts, 327K pred., 20M URLs",
        ),
        (
            "NELL",
            nell::generate(&nell::NellConfig {
                scale: nl_scale,
                seed: 42,
                ..Default::default()
            }),
            "Empty",
            "2.9M facts, 330 pred., 340K URLs",
        ),
        (
            "ReVerb-Slim",
            slim::generate(&slim::SlimConfig::reverb(42).with_scale(slim_scale)),
            "Adjustable",
            "859K facts, 33K pred., 100 URLs",
        ),
        (
            "NELL-Slim",
            slim::generate(&slim::SlimConfig::nell(42).with_scale(slim_scale)),
            "Adjustable",
            "508K facts, 280 pred., 100 URLs",
        ),
    ];

    let mut table = Table::new(
        "Figure 7: dataset statistics (generated at reduced scale; paper values for reference)",
        &[
            "Dataset",
            "# of facts",
            "# of pred.",
            "# of sources",
            "Existing KB",
            "Paper (full scale)",
        ],
    );
    for (name, ds, kb, paper) in &datasets {
        let stats = ds.stats();
        // The paper counts the slim corpora as "100 URLs" — the 100 curated
        // web sources (domains); the full corpora count pages.
        let sources = if name.ends_with("-Slim") {
            let mut domains: Vec<String> = ds
                .sources
                .iter()
                .map(|s| s.url.domain().as_str().to_owned())
                .collect();
            domains.sort();
            domains.dedup();
            domains.len()
        } else {
            stats.num_urls
        };
        table.row(&[
            (*name).to_owned(),
            humanize(stats.num_facts),
            humanize(stats.num_predicates),
            humanize(sources),
            (*kb).to_owned(),
            (*paper).to_owned(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_four_rows() {
        let out = run(ExperimentScale::Quick);
        assert!(out.contains("ReVerb"));
        assert!(out.contains("NELL-Slim"));
        assert_eq!(out.lines().count(), 3 + 4, "title + header + rule + 4 rows");
    }
}
