//! # midas-bench — the experiment drivers behind every table and figure
//!
//! One binary per paper artefact (see DESIGN.md §4 for the full index):
//!
//! | binary            | reproduces                                        |
//! |-------------------|---------------------------------------------------|
//! | `fig3_kvault`     | Figure 3 — top slices augmenting Freebase          |
//! | `fig7_stats`      | Figure 7 — dataset statistics                      |
//! | `fig8_silver`     | Figure 8 — silver-standard snapshot                |
//! | `fig9_coverage`   | Figure 9 — P/R/F vs knowledge-base coverage        |
//! | `fig10_realworld` | Figure 10 — top-k precision & runtime vs input     |
//! | `fig11_synthetic` | Figure 11 — accuracy & runtime on §IV-D synthetics |
//! | `reproduce_all`   | everything above, at quick-run scales              |
//!
//! This library hosts the shared experiment drivers so that the binaries
//! stay thin and the logic is unit-testable.

#![warn(missing_docs)]

pub mod experiments;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod seed_reference;

pub use experiments::{run_four_algorithms, AlgoOutcome, ExperimentScale};
