//! # midas-bench — the experiment drivers behind every table and figure
//!
//! One binary per paper artefact (see DESIGN.md §4 for the full index):
//!
//! | binary            | reproduces                                        |
//! |-------------------|---------------------------------------------------|
//! | `fig3_kvault`     | Figure 3 — top slices augmenting Freebase          |
//! | `fig7_stats`      | Figure 7 — dataset statistics                      |
//! | `fig8_silver`     | Figure 8 — silver-standard snapshot                |
//! | `fig9_coverage`   | Figure 9 — P/R/F vs knowledge-base coverage        |
//! | `fig10_realworld` | Figure 10 — top-k precision & runtime vs input     |
//! | `fig11_synthetic` | Figure 11 — accuracy & runtime on §IV-D synthetics |
//! | `reproduce_all`   | everything above, at quick-run scales              |
//!
//! This library hosts the shared experiment drivers so that the binaries
//! stay thin and the logic is unit-testable.

#![warn(missing_docs)]

pub mod experiments;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod seed_reference;

pub use experiments::{run_four_algorithms, AlgoOutcome, ExperimentScale};

/// Registers the criterion shim's metrics hook so every `MIDAS_BENCH_JSON`
/// line carries a `"metrics"` field with the telemetry snapshot whenever
/// recording is on (`MIDAS_TELEMETRY=1` / `MIDAS_TRACE`). The shim cannot
/// depend on `midas-core`, so each bench binary bridges the two by calling
/// this once at the top of its first bench function; when telemetry is off
/// the hook returns `None` and the JSON lines are byte-identical to before.
pub fn install_metrics_hook() {
    criterion::set_metrics_hook(metrics_hook);
}

fn metrics_hook() -> Option<String> {
    midas_core::telemetry::enabled().then(|| midas_core::telemetry::snapshot().to_json())
}
