//! Figure 11 — accuracy and runtime on the §IV-D synthetic generator.
//!
//! * 11a/11b: `b = 20`, `m = 10`, number of facts swept (1 k – 10 k): the
//!   F-measure and total runtime of MIDAS, GREEDY, AGGCLUSTER (and NAIVE).
//! * 11c/11d: `n = 5000`, `b = 20`, number of optimal slices swept 1 – 10.
//!
//! Expected shapes: MIDAS F ≈ 1 throughout with runtime linear in `n`;
//! GREEDY fast but recall ≈ 1/m; AGGCLUSTER slower, superlinear, noisy.

use crate::experiments::{actionable, run_four_algorithms, ExperimentScale};
use midas_core::MidasConfig;
use midas_eval::report::{f2, f3};
use midas_eval::{match_to_gold, AsciiChart, Series, Table};
use midas_extract::synthetic::{generate, SyntheticConfig};

/// Runs both sweeps and renders the four panels.
pub fn run(scale: ExperimentScale) -> String {
    let (fact_sweep, m_sweep): (Vec<usize>, Vec<usize>) = match scale {
        ExperimentScale::Quick => (vec![1_000, 2_500, 5_000], vec![1, 2, 4, 6, 8, 10]),
        ExperimentScale::Full => (vec![1_000, 2_500, 5_000, 7_500, 10_000], (1..=10).collect()),
    };
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let cfg = MidasConfig::default();
    let mut out = String::new();

    // ---- Figure 11a/11b: sweep n, fixed b = 20, m = 10 -------------------
    let mut acc = Table::new(
        "Figure 11a: F-measure vs number of facts (b=20, m=10)",
        &["# facts", "midas", "greedy", "aggcluster", "naive"],
    );
    let mut time = Table::new(
        "Figure 11b: runtime (ms) vs number of facts (b=20, m=10)",
        &["# facts", "midas", "greedy", "aggcluster", "naive"],
    );
    for &n in &fact_sweep {
        let ds = generate(&SyntheticConfig::new(n, 20, 10, 42));
        let outcomes = run_four_algorithms(&cfg, &ds.sources, &ds.kb, threads);
        let fs: Vec<String> = outcomes
            .iter()
            .map(|o| f3(match_to_gold(&actionable(o), &ds.truth.gold).f_measure))
            .collect();
        let ts: Vec<String> = outcomes
            .iter()
            .map(|o| f2(o.run.duration.as_secs_f64() * 1e3))
            .collect();
        acc.row(&[vec![n.to_string()], fs].concat());
        time.row(&[vec![n.to_string()], ts].concat());
    }
    out.push_str(&acc.render());
    out.push('\n');
    out.push_str(&time.render());
    out.push('\n');

    // ---- Figure 11c/11d: sweep m, fixed n = 5000, b = 20 -----------------
    let mut acc = Table::new(
        "Figure 11c: F-measure vs number of optimal slices (n=5000, b=20)",
        &["# optimal", "midas", "greedy", "aggcluster", "naive"],
    );
    let mut time = Table::new(
        "Figure 11d: runtime (ms) vs number of optimal slices (n=5000, b=20)",
        &["# optimal", "midas", "greedy", "aggcluster", "naive"],
    );
    let mut f_series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    for &m in &m_sweep {
        let ds = generate(&SyntheticConfig::new(5_000, 20, m, 43));
        let outcomes = run_four_algorithms(&cfg, &ds.sources, &ds.kb, threads);
        let fs: Vec<String> = outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let f = match_to_gold(&actionable(o), &ds.truth.gold).f_measure;
                f_series[i].push((m as f64, f));
                f3(f)
            })
            .collect();
        let ts: Vec<String> = outcomes
            .iter()
            .map(|o| f2(o.run.duration.as_secs_f64() * 1e3))
            .collect();
        acc.row(&[vec![m.to_string()], fs].concat());
        time.row(&[vec![m.to_string()], ts].concat());
    }
    out.push_str(&acc.render());
    out.push('\n');
    out.push_str(&time.render());
    out.push('\n');
    let mut chart = AsciiChart::new(
        "Figure 11c (chart): F-measure vs number of optimal slices",
        48,
        10,
    )
    .with_y_range(0.0, 1.0);
    for (s, alg) in f_series
        .into_iter()
        .zip(["midas", "greedy", "aggcluster", "naive"])
    {
        chart = chart.series(Series::new(alg, s));
    }
    out.push_str(&chart.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline Figure 11 claims, asserted at a small scale: MIDAS
    /// dominates GREEDY on F-measure once there are several optimal slices,
    /// and GREEDY's recall collapses with m.
    #[test]
    fn midas_beats_greedy_with_many_optimal_slices() {
        let cfg = MidasConfig::default();
        let ds = generate(&SyntheticConfig::new(2_000, 20, 8, 7));
        let outcomes = run_four_algorithms(&cfg, &ds.sources, &ds.kb, 2);
        let f = |name: &str| {
            let o = outcomes.iter().find(|o| o.name == name).unwrap();
            match_to_gold(&actionable(o), &ds.truth.gold).f_measure
        };
        let midas = f("midas");
        let greedy = f("greedy");
        assert!(midas > 0.8, "MIDAS should be near-perfect, got {midas}");
        assert!(greedy < 0.5, "GREEDY is capped at one slice, got {greedy}");
        assert!(midas > greedy);
    }

    #[test]
    fn greedy_is_fine_with_one_optimal_slice() {
        let cfg = MidasConfig::default();
        let ds = generate(&SyntheticConfig::new(2_000, 20, 1, 7));
        let outcomes = run_four_algorithms(&cfg, &ds.sources, &ds.kb, 2);
        let o = outcomes.iter().find(|o| o.name == "greedy").unwrap();
        let prf = match_to_gold(&actionable(o), &ds.truth.gold);
        assert!(
            prf.f_measure > 0.9,
            "GREEDY finds the single optimal slice, got {prf:?}"
        );
    }
}
