//! Figure 8 — a snapshot of the silver standard.
//!
//! The paper shows six of the 100 curated sources: four with their desired
//! slice descriptions and two (a blog and a news-voices site) with none.
//! This harness prints the same kind of snapshot from the generated
//! ReVerb-Slim silver standard, plus the aggregate counts.

use crate::experiments::ExperimentScale;
use midas_eval::Table;
use midas_extract::slim::{generate, SlimConfig, SlimFlavor};

/// Runs the Figure 8 snapshot.
pub fn run(scale: ExperimentScale) -> String {
    let gen_scale = match scale {
        ExperimentScale::Quick => 0.004,
        ExperimentScale::Full => 0.02,
    };
    let ds = generate(&SlimConfig {
        flavor: SlimFlavor::ReVerb,
        scale: gen_scale,
        seed: 42,
    });

    let mut domains: Vec<String> = ds
        .sources
        .iter()
        .map(|s| s.url.domain().as_str().to_owned())
        .collect();
    domains.sort();
    domains.dedup();

    let mut t = Table::new(
        "Figure 8: snapshot of selected web sources in the silver standard",
        &["URL", "Desired slices description"],
    );
    // Four good sources…
    let mut shown = 0;
    for d in &domains {
        if shown >= 4 {
            break;
        }
        let descs: Vec<&str> = ds
            .truth
            .gold
            .iter()
            .filter(|g| g.source.domain().as_str() == *d)
            .map(|g| g.description.as_str())
            .collect();
        if !descs.is_empty() {
            t.row(&[d.clone(), descs.join("; ")]);
            shown += 1;
        }
    }
    // …and two without any desired slice.
    let mut shown = 0;
    for d in &domains {
        if shown >= 2 {
            break;
        }
        let has_gold = ds
            .truth
            .gold
            .iter()
            .any(|g| g.source.domain().as_str() == *d);
        if !has_gold {
            t.row(&[d.clone(), "No desired slice".to_owned()]);
            shown += 1;
        }
    }

    let with_gold = {
        let mut gd: Vec<String> = ds
            .truth
            .gold
            .iter()
            .map(|g| g.source.domain().as_str().to_owned())
            .collect();
        gd.sort();
        gd.dedup();
        gd.len()
    };
    let mut out = t.render();
    out.push_str(&format!(
        "\nAmong {} selected web sources, {} of them contain at least one high-profit slice \
         ({} silver-standard slices in total).\n",
        domains.len(),
        with_gold,
        ds.truth.gold.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_good_and_empty_rows() {
        let out = run(ExperimentScale::Quick);
        assert!(out.contains("No desired slice"));
        assert!(out.contains("Among 100 selected web sources, 50"));
    }
}
