//! Figure 9 — slice quality vs knowledge-base coverage on the slim corpora.
//!
//! Coverage sweeps 0 → 0.8; at each point the silver standard's selected
//! slices are loaded into the knowledge base and the algorithms are
//! evaluated against the remaining slices. Panels a/c/e are PR curves at
//! coverage 0, 0.4, 0.8; panels b/d/f are recall / precision / F-measure vs
//! coverage. Expected shape: MIDAS dominates everywhere, with a mild decline
//! at high coverage (a silver-standard artefact the paper discusses).

use crate::experiments::{actionable, run_four_algorithms, ExperimentScale};
use midas_core::MidasConfig;
use midas_eval::report::f3;
use midas_eval::{coverage_adjusted, match_to_gold, pr_curve, AsciiChart, Series, Table};
use midas_extract::slim::{generate, SlimConfig, SlimFlavor};

/// Coverage levels of Figure 9b/d/f.
pub const COVERAGES: &[f64] = &[0.0, 0.2, 0.4, 0.6, 0.8];

/// Runs the coverage experiment on one slim flavour.
pub fn run_flavor(flavor: SlimFlavor, scale: ExperimentScale) -> String {
    let gen_scale = match scale {
        ExperimentScale::Quick => 0.004,
        ExperimentScale::Full => 0.02,
    };
    let cfg = SlimConfig {
        flavor,
        scale: gen_scale,
        seed: 42,
    };
    let ds = generate(&cfg);
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let midas_cfg = MidasConfig::default();
    let flavor_name = match flavor {
        SlimFlavor::ReVerb => "ReVerb-Slim",
        SlimFlavor::Nell => "NELL-Slim",
    };

    let mut out = String::new();
    let mut precision_t = Table::new(
        &format!("Figure 9d: precision vs coverage ({flavor_name})"),
        &["coverage", "midas", "greedy", "aggcluster", "naive"],
    );
    let mut recall_t = Table::new(
        &format!("Figure 9b: recall vs coverage ({flavor_name})"),
        &["coverage", "midas", "greedy", "aggcluster", "naive"],
    );
    let mut f_t = Table::new(
        &format!("Figure 9f: F-measure vs coverage ({flavor_name})"),
        &["coverage", "midas", "greedy", "aggcluster", "naive"],
    );

    let mut f_series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    for &coverage in COVERAGES {
        let (kb, gold) = coverage_adjusted(&ds, coverage, 7);
        let outcomes = run_four_algorithms(&midas_cfg, &ds.sources, &kb, threads);
        let prfs: Vec<_> = outcomes
            .iter()
            .map(|o| match_to_gold(&actionable(o), &gold))
            .collect();
        for (i, prf) in prfs.iter().enumerate() {
            f_series[i].push((coverage, prf.f_measure));
        }
        let cov = format!("{coverage:.1}");
        precision_t.row(
            &[
                vec![cov.clone()],
                prfs.iter().map(|p| f3(p.precision)).collect(),
            ]
            .concat(),
        );
        recall_t.row(
            &[
                vec![cov.clone()],
                prfs.iter().map(|p| f3(p.recall)).collect(),
            ]
            .concat(),
        );
        f_t.row(&[vec![cov], prfs.iter().map(|p| f3(p.f_measure)).collect()].concat());

        // PR curves at the three highlighted coverages (Figure 9a/c/e).
        if coverage == 0.0 || coverage == 0.4 || coverage == 0.8 {
            let mut curve_t = Table::new(
                &format!("Figure 9 PR curve at coverage {coverage:.1} ({flavor_name})"),
                &["algorithm", "recall→precision points (every 5th)"],
            );
            for o in &outcomes {
                let pts = pr_curve(&o.run.slices, &gold);
                let shown: Vec<String> = pts
                    .iter()
                    .step_by(5.max(pts.len() / 12).max(1))
                    .map(|(r, p)| format!("({r:.2},{p:.2})"))
                    .collect();
                curve_t.row(&[o.name.to_owned(), shown.join(" ")]);
            }
            out.push_str(&curve_t.render());
            out.push('\n');
        }
    }
    out.push_str(&recall_t.render());
    out.push('\n');
    out.push_str(&precision_t.render());
    out.push('\n');
    out.push_str(&f_t.render());
    out.push('\n');
    let mut chart = AsciiChart::new(
        &format!("Figure 9f (chart): F-measure vs coverage ({flavor_name})"),
        48,
        10,
    )
    .with_y_range(0.0, 1.0);
    for (series, name) in f_series
        .into_iter()
        .zip(["midas", "greedy", "aggcluster", "naive"])
    {
        chart = chart.series(Series::new(name, series));
    }
    out.push_str(&chart.render());
    out
}

/// Runs both flavours.
pub fn run(scale: ExperimentScale) -> String {
    let mut out = run_flavor(SlimFlavor::ReVerb, scale);
    out.push('\n');
    out.push_str(&run_flavor(SlimFlavor::Nell, scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline Figure 9 claim at tiny scale: MIDAS beats every baseline
    /// on F-measure at zero coverage.
    #[test]
    fn midas_dominates_at_zero_coverage() {
        let ds = generate(&SlimConfig {
            flavor: SlimFlavor::ReVerb,
            scale: 0.002,
            seed: 3,
        });
        let cfg = MidasConfig::default();
        let outcomes = run_four_algorithms(&cfg, &ds.sources, &ds.kb, 2);
        let f = |name: &str| {
            let o = outcomes.iter().find(|o| o.name == name).unwrap();
            match_to_gold(&actionable(o), &ds.truth.gold).f_measure
        };
        let midas = f("midas");
        assert!(midas > 0.6, "MIDAS F-measure too low: {midas}");
        for b in ["greedy", "aggcluster", "naive"] {
            assert!(midas >= f(b), "MIDAS ({midas}) must beat {b} ({})", f(b));
        }
    }
}
