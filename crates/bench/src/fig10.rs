//! Figure 10 — top-k precision and execution time on ReVerb / NELL shapes.
//!
//! Panels a/c: precision of the top-k returned slices (k ≤ 100) against an
//! empty knowledge base, judged by the simulated annotator of §IV-B.
//! Panels b/d: total execution time as the input ratio (fraction of sources
//! processed) grows — NELL's disproportionately large source produces the
//! AGGCLUSTER cliff.

use crate::experiments::{run_four_algorithms, ExperimentScale};
use midas_core::MidasConfig;
use midas_eval::report::{f2, f3};
use midas_eval::{top_k_precision, AsciiChart, Series, SimulatedAnnotator, Table};
use midas_extract::Dataset;
use midas_extract::{nell, reverb};

/// Input ratios of Figure 10b/d.
pub const INPUT_RATIOS: &[f64] = &[0.25, 0.5, 0.75, 1.0];

fn top_k_table(name: &str, ds: &Dataset, scale: ExperimentScale) -> String {
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let cfg = MidasConfig::default();
    let outcomes = run_four_algorithms(&cfg, &ds.sources, &ds.kb, threads);
    let annotator = SimulatedAnnotator::default();
    let ks: Vec<usize> = match scale {
        ExperimentScale::Quick => vec![5, 10, 20, 40],
        ExperimentScale::Full => vec![10, 20, 40, 60, 80, 100],
    };
    let mut t = Table::new(
        &format!("Figure 10 top-k precision on {name} (empty KB, simulated labeling)"),
        [
            vec!["k".to_owned()],
            outcomes.iter().map(|o| o.name.to_owned()).collect(),
        ]
        .concat()
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice(),
    );
    for &k in &ks {
        let row: Vec<String> = outcomes
            .iter()
            .map(|o| {
                f3(top_k_precision(&o.run.slices, k, |s| {
                    annotator.is_correct(s, &ds.truth)
                }))
            })
            .collect();
        t.row(&[vec![k.to_string()], row].concat());
    }
    t.render()
}

fn timing_table(name: &str, ds: &Dataset) -> String {
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let cfg = MidasConfig::default();
    let mut t = Table::new(
        &format!("Figure 10 execution time (ms) vs input ratio on {name}"),
        &["ratio", "midas", "greedy", "aggcluster", "naive"],
    );
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    for &ratio in INPUT_RATIOS {
        let subset = ds.with_input_ratio(ratio);
        let outcomes = run_four_algorithms(&cfg, &subset, &ds.kb, threads);
        let row: Vec<String> = outcomes
            .iter()
            .map(|o| f2(o.run.duration.as_secs_f64() * 1e3))
            .collect();
        for (i, o) in outcomes.iter().enumerate() {
            // Log scale, as in the paper's Figure 10b/d.
            series[i].push((
                ratio,
                (o.run.duration.as_secs_f64() * 1e3).max(1e-3).log10(),
            ));
        }
        t.row(&[vec![format!("{ratio:.2}")], row].concat());
    }
    let mut out = t.render();
    out.push('\n');
    let mut chart = AsciiChart::new(
        &format!("Figure 10 (chart): log10 time(ms) vs input ratio on {name}"),
        48,
        10,
    );
    for (s, alg) in series
        .into_iter()
        .zip(["midas", "greedy", "aggcluster", "naive"])
    {
        chart = chart.series(Series::new(alg, s));
    }
    out.push_str(&chart.render());
    out
}

/// Runs both panels on both corpora.
pub fn run(scale: ExperimentScale) -> String {
    let (rv_scale, nl_scale, giant) = match scale {
        ExperimentScale::Quick => (0.0008, 0.0015, 500),
        ExperimentScale::Full => (0.004, 0.008, 1_500),
    };
    let rv = reverb::generate(&reverb::ReverbConfig {
        scale: rv_scale,
        seed: 42,
    });
    let nl = nell::generate(&nell::NellConfig {
        scale: nl_scale,
        seed: 42,
        giant_source_entities: giant,
    });
    let mut out = String::new();
    out.push_str(&top_k_table("ReVerb", &rv, scale));
    out.push('\n');
    out.push_str(&timing_table("ReVerb", &rv));
    out.push('\n');
    out.push_str(&top_k_table("NELL", &nl, scale));
    out.push('\n');
    out.push_str(&timing_table("NELL", &nl));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_four_algorithms;
    use midas_eval::top_k_precision;

    /// Figure 10a/c headline: MIDAS top-k precision is high; NAIVE's is low
    /// (it ranks forums and news sites on top).
    #[test]
    fn midas_beats_naive_on_top_k_precision() {
        let ds = reverb::generate(&reverb::ReverbConfig {
            scale: 0.0004,
            seed: 5,
        });
        let cfg = MidasConfig::default();
        let outcomes = run_four_algorithms(&cfg, &ds.sources, &ds.kb, 2);
        let annotator = SimulatedAnnotator::default();
        let prec = |name: &str, k: usize| {
            let o = outcomes.iter().find(|o| o.name == name).unwrap();
            top_k_precision(&o.run.slices, k, |s| annotator.is_correct(s, &ds.truth))
        };
        let midas = prec("midas", 5);
        let naive = prec("naive", 5);
        assert!(midas > 0.7, "MIDAS top-5 precision too low: {midas}");
        assert!(naive < 0.5, "NAIVE should rank noise high, got {naive}");
    }
}
