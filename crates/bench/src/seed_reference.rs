//! Seed-implementation reference for the extent-engine benchmarks.
//!
//! A faithful port of the hierarchy construction and profit evaluation as
//! they stood in the growth seed (commit `v0`), kept here so the criterion
//! benches can report a same-binary baseline next to the optimized engine:
//!
//! - extents are plain sorted `Vec<EntityId>`, intersected with the
//!   two-pointer merge (`intersect_sorted`);
//! - every parent re-intersects all `l−1` inverted lists from scratch
//!   (`O(l²)` intersections per child) through a `Box<[PropertyId]>`-keyed
//!   hash map that allocates per candidate lookup;
//! - `f_LB` slice-set unions go through an `FnvHashSet<EntityId>`;
//! - `link` deduplicates with a linear `contains` scan.
//!
//! Only the construction-relevant surface is ported (no seeded/multi-source
//! variant); pruning decisions are identical to the optimized engine, which
//! `tests/seed_reference_parity.rs` asserts.

use midas_core::fact_table::{intersect_sorted, EntityId, PropertyId};
use midas_core::{FactTable, MidasConfig, ProfitCtx};
use midas_kb::fnv::{FnvHashMap, FnvHashSet};

/// Node id within [`SeedHierarchy`].
pub type NodeId = u32;

/// One slice node, seed layout (sorted `Vec<EntityId>` extent).
#[derive(Debug, Clone)]
pub struct SeedNode {
    /// Defining property set, sorted.
    pub props: Box<[PropertyId]>,
    /// Entity extent, sorted.
    pub extent: Vec<EntityId>,
    /// Children (more properties).
    pub children: Vec<NodeId>,
    /// Parents (fewer properties).
    pub parents: Vec<NodeId>,
    /// Seeded from an entity.
    pub is_initial: bool,
    /// Proposition 12 flag.
    pub canonical: bool,
    /// Deleted as non-canonical.
    pub removed: bool,
    /// Survives low-profit pruning.
    pub valid: bool,
    /// `f({S})`.
    pub profit: f64,
    /// `f_LB(S)`.
    pub slb_profit: f64,
    /// `SLB(S)`.
    pub slb_slices: Vec<NodeId>,
}

/// Seed-style slice hierarchy over sorted-vector extents.
#[derive(Debug)]
pub struct SeedHierarchy {
    /// All nodes, removed ones included.
    pub nodes: Vec<SeedNode>,
    by_key: FnvHashMap<Box<[PropertyId]>, NodeId>,
    levels: Vec<Vec<NodeId>>,
    max_level: usize,
    /// Node-count safety valve tripped.
    pub capped: bool,
}

/// The per-property inverted lists in their seed representation, extracted
/// once from the catalog (the seed stored them this way inside
/// `FactTable::build`, outside the timed construction).
pub struct SeedLists {
    lists: Vec<Vec<EntityId>>,
}

impl SeedLists {
    /// Materializes every catalog extent as a sorted id vector.
    pub fn from_table(table: &FactTable) -> Self {
        let cat = table.catalog();
        SeedLists {
            lists: (0..cat.len() as PropertyId)
                .map(|p| cat.extent(p).to_vec())
                .collect(),
        }
    }

    fn extent_of(&self, table: &FactTable, props: &[PropertyId]) -> Vec<EntityId> {
        if props.is_empty() {
            return (0..table.num_entities() as EntityId).collect();
        }
        let mut lists: Vec<&[EntityId]> =
            props.iter().map(|&p| &self.lists[p as usize][..]).collect();
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<EntityId> = lists[0].to_vec();
        for list in &lists[1..] {
            acc = intersect_sorted(&acc, list);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }
}

fn profit_of(ctx: &ProfitCtx<'_>, extent: &[EntityId], k: usize) -> f64 {
    let table = ctx.table();
    let mut new_facts = 0u64;
    let mut total_facts = 0u64;
    for &e in extent {
        new_facts += u64::from(table.new_of(e));
        total_facts += u64::from(table.facts_of(e));
    }
    ctx.profit_from_counts(new_facts, total_facts, k)
}

impl SeedHierarchy {
    /// Seed-style single-source construction (entity-seeded).
    pub fn build(
        table: &FactTable,
        lists: &SeedLists,
        ctx: &ProfitCtx<'_>,
        config: &MidasConfig,
    ) -> Self {
        let mut h = SeedHierarchy {
            nodes: Vec::new(),
            by_key: FnvHashMap::default(),
            levels: Vec::new(),
            max_level: 0,
            capped: false,
        };
        h.seed_from_entities(table, lists, config);
        for l in (1..=h.max_level).rev() {
            if l > 1 {
                h.generate_parents(table, lists, config, l);
            }
            h.prune_non_canonical(l);
            h.evaluate_and_prune_profit(ctx, config, l);
        }
        h
    }

    /// Live-node count — the seed's O(nodes) scan.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| !n.removed).count()
    }

    /// Whether every node has been removed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_create(
        &mut self,
        table: &FactTable,
        lists: &SeedLists,
        props: Box<[PropertyId]>,
    ) -> NodeId {
        if let Some(&id) = self.by_key.get(&props) {
            return id;
        }
        let extent = lists.extent_of(table, &props);
        let level = props.len();
        let id = u32::try_from(self.nodes.len()).expect("hierarchy overflow");
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
        }
        self.levels[level].push(id);
        self.max_level = self.max_level.max(level);
        self.by_key.insert(props.clone(), id);
        self.nodes.push(SeedNode {
            props,
            extent,
            children: Vec::new(),
            parents: Vec::new(),
            is_initial: false,
            canonical: false,
            removed: false,
            valid: true,
            profit: 0.0,
            slb_profit: 0.0,
            slb_slices: Vec::new(),
        });
        id
    }

    fn seed_from_entities(&mut self, table: &FactTable, lists: &SeedLists, config: &MidasConfig) {
        for e in 0..table.num_entities() as EntityId {
            let props = table.entity_properties(e);
            if props.is_empty() {
                continue;
            }
            let mut groups: Vec<(midas_kb::Symbol, Vec<PropertyId>)> = Vec::new();
            for &pid in props {
                let (pred, _) = table.catalog().pair(pid);
                match groups.iter_mut().find(|(g, _)| *g == pred) {
                    Some((_, v)) => v.push(pid),
                    None => groups.push((pred, vec![pid])),
                }
            }
            if groups.len() > config.max_properties_per_entity {
                groups.sort_by_key(|(_, v)| {
                    v.iter()
                        .map(|&p| lists.lists[p as usize].len())
                        .min()
                        .unwrap_or(usize::MAX)
                });
                groups.truncate(config.max_properties_per_entity);
            }
            let mut combos: Vec<Vec<PropertyId>> = vec![Vec::with_capacity(groups.len())];
            for (_, values) in &groups {
                let mut next = Vec::with_capacity(combos.len() * values.len());
                'outer: for combo in &combos {
                    for &v in values {
                        if next.len() + combos.len() >= config.max_initial_combinations_per_entity
                            && !next.is_empty()
                        {
                            break 'outer;
                        }
                        let mut c = combo.clone();
                        c.push(v);
                        next.push(c);
                    }
                }
                combos = next;
            }
            for mut combo in combos {
                combo.sort_unstable();
                let id = self.get_or_create(table, lists, combo.into_boxed_slice());
                self.nodes[id as usize].is_initial = true;
            }
        }
    }

    fn generate_parents(
        &mut self,
        table: &FactTable,
        lists: &SeedLists,
        config: &MidasConfig,
        l: usize,
    ) {
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        for id in ids {
            if self.nodes[id as usize].removed {
                continue;
            }
            if self.nodes.len() >= config.max_hierarchy_nodes {
                self.capped = true;
                return;
            }
            let props = self.nodes[id as usize].props.clone();
            for skip in 0..props.len() {
                let parent_props: Box<[PropertyId]> = props
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &p)| p)
                    .collect();
                let pid = self.get_or_create(table, lists, parent_props);
                self.link(pid, id);
            }
        }
    }

    fn link(&mut self, parent: NodeId, child: NodeId) {
        if !self.nodes[parent as usize].children.contains(&child) {
            self.nodes[parent as usize].children.push(child);
            self.nodes[child as usize].parents.push(parent);
        }
    }

    fn unlink_all(&mut self, id: NodeId) -> (Vec<NodeId>, Vec<NodeId>) {
        let parents = std::mem::take(&mut self.nodes[id as usize].parents);
        let children = std::mem::take(&mut self.nodes[id as usize].children);
        for &p in &parents {
            self.nodes[p as usize].children.retain(|&c| c != id);
        }
        for &c in &children {
            self.nodes[c as usize].parents.retain(|&p| p != id);
        }
        (parents, children)
    }

    fn is_descendant(&self, from: NodeId, target: NodeId) -> bool {
        let target_props = &self.nodes[target as usize].props;
        let mut stack: Vec<NodeId> = vec![from];
        let mut visited: FnvHashSet<NodeId> = FnvHashSet::default();
        while let Some(cur) = stack.pop() {
            for &c in &self.nodes[cur as usize].children {
                if c == target {
                    return true;
                }
                let cn = &self.nodes[c as usize];
                if cn.removed || !visited.insert(c) {
                    continue;
                }
                if cn.props.len() < target_props.len() && is_subset(&cn.props, target_props) {
                    stack.push(c);
                }
            }
        }
        false
    }

    fn prune_non_canonical(&mut self, l: usize) {
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        for id in ids {
            let node = &self.nodes[id as usize];
            if node.removed {
                continue;
            }
            let canonical = node.is_initial
                || node
                    .children
                    .iter()
                    .filter(|&&c| self.nodes[c as usize].canonical)
                    .count()
                    >= 2;
            if canonical {
                self.nodes[id as usize].canonical = true;
                continue;
            }
            self.nodes[id as usize].removed = true;
            let (parents, children) = self.unlink_all(id);
            for &p in &parents {
                for &c in &children {
                    if !self.is_descendant(p, c) {
                        self.link(p, c);
                    }
                }
            }
        }
    }

    fn evaluate_and_prune_profit(&mut self, ctx: &ProfitCtx<'_>, config: &MidasConfig, l: usize) {
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        for id in ids {
            if self.nodes[id as usize].removed {
                continue;
            }
            let profit = profit_of(ctx, &self.nodes[id as usize].extent, 1);

            let mut child_set: Vec<NodeId> = Vec::new();
            {
                let node = &self.nodes[id as usize];
                let mut seen: FnvHashSet<NodeId> = FnvHashSet::default();
                for &c in &node.children {
                    let cn = &self.nodes[c as usize];
                    if cn.slb_profit > 0.0 {
                        for &s in &cn.slb_slices {
                            if seen.insert(s) {
                                child_set.push(s);
                            }
                        }
                    }
                }
            }
            let f_child_set = if child_set.is_empty() {
                0.0
            } else {
                let mut union: FnvHashSet<EntityId> = FnvHashSet::default();
                for &s in &child_set {
                    union.extend(self.nodes[s as usize].extent.iter().copied());
                }
                let mut new_facts = 0u64;
                let mut total_facts = 0u64;
                for &e in &union {
                    new_facts += u64::from(ctx.table().new_of(e));
                    total_facts += u64::from(ctx.table().facts_of(e));
                }
                ctx.profit_from_counts(new_facts, total_facts, child_set.len())
            };

            let node = &mut self.nodes[id as usize];
            node.profit = profit;
            if profit >= f_child_set && profit > 0.0 {
                node.slb_profit = profit;
                node.slb_slices = vec![id];
            } else if f_child_set > 0.0 {
                node.slb_profit = f_child_set;
                node.slb_slices = child_set;
            } else {
                node.slb_profit = 0.0;
                node.slb_slices = Vec::new();
            }
            if !config.disable_profit_pruning && (profit < 0.0 || profit < f_child_set) {
                node.valid = false;
            }
        }
    }
}

fn is_subset(sub: &[PropertyId], sup: &[PropertyId]) -> bool {
    let mut j = 0;
    for &x in sub {
        while j < sup.len() && sup[j] < x {
            j += 1;
        }
        if j >= sup.len() || sup[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Seed-style profit accumulator (boolean coverage map + per-entity sums),
/// for the `profit_eval` baseline measurements.
#[derive(Debug, Clone)]
pub struct SeedAccumulator {
    covered: Vec<bool>,
    new_facts: u64,
    total_facts: u64,
    k: usize,
}

impl SeedAccumulator {
    /// Fresh accumulator over `ctx`'s table.
    pub fn new(ctx: &ProfitCtx<'_>) -> Self {
        SeedAccumulator {
            covered: vec![false; ctx.table().num_entities()],
            new_facts: 0,
            total_facts: 0,
            k: 0,
        }
    }

    /// Current `f(S)`.
    pub fn profit(&self, ctx: &ProfitCtx<'_>) -> f64 {
        ctx.profit_from_counts(self.new_facts, self.total_facts, self.k)
    }

    /// Marginal profit of adding `extent`.
    pub fn marginal(&self, ctx: &ProfitCtx<'_>, extent: &[EntityId]) -> f64 {
        let table = ctx.table();
        let (mut new_facts, mut total_facts) = (self.new_facts, self.total_facts);
        for &e in extent {
            if !self.covered[e as usize] {
                new_facts += u64::from(table.new_of(e));
                total_facts += u64::from(table.facts_of(e));
            }
        }
        ctx.profit_from_counts(new_facts, total_facts, self.k + 1) - self.profit(ctx)
    }

    /// Adds `extent` to the covered set.
    pub fn add(&mut self, ctx: &ProfitCtx<'_>, extent: &[EntityId]) {
        let table = ctx.table();
        for &e in extent {
            if !self.covered[e as usize] {
                self.covered[e as usize] = true;
                self.new_facts += u64::from(table.new_of(e));
                self.total_facts += u64::from(table.facts_of(e));
            }
        }
        self.k += 1;
    }
}

/// Seed-style single-slice profit over a sorted id extent.
pub fn seed_profit_single(ctx: &ProfitCtx<'_>, extent: &[EntityId]) -> f64 {
    profit_of(ctx, extent, 1)
}
