//! The seed-era reference port must be *semantically* identical to the
//! optimized engine: same nodes in the same creation order, same extents,
//! same canonicality and low-profit pruning decisions, bit-identical
//! profits. Only link-list ordering may differ (the optimized engine keeps
//! children/parents sorted; the seed appended), so lists are compared as
//! sorted multisets.

use midas_bench::seed_reference::{SeedHierarchy, SeedLists};
use midas_core::fixtures::skyrocket;
use midas_core::{FactTable, MidasConfig, ProfitCtx, SliceHierarchy};
use midas_extract::synthetic::{generate, SyntheticConfig};
use midas_kb::Interner;

fn assert_parity(table: &FactTable, cfg: &MidasConfig) {
    let ctx = ProfitCtx::new(table, cfg.cost);
    let new = SliceHierarchy::build(table, &ctx, cfg);
    let lists = SeedLists::from_table(table);
    let seed = SeedHierarchy::build(table, &lists, &ctx, cfg);

    assert_eq!(new.capacity(), seed.nodes.len(), "node counts differ");
    assert_eq!(new.len(), seed.len(), "live counts differ");
    assert_eq!(new.capped, seed.capped);
    for id in 0..seed.nodes.len() as u32 {
        let x = new.node(id);
        let y = &seed.nodes[id as usize];
        assert_eq!(&*x.props, &*y.props, "node {id}: props");
        if x.extent_freed {
            // The engine releases removed and low-profit-invalidated nodes'
            // extents at level boundaries (the seed kept them); a freed
            // extent must read as empty and only ever belong to a node both
            // sides agree is removed or invalid.
            assert!(
                (x.removed && y.removed) || (!x.valid && !y.valid),
                "node {id}: freed but live"
            );
            assert!(x.extent.is_empty(), "node {id}: freed extent not empty");
        } else {
            assert_eq!(x.extent.to_vec(), y.extent, "node {id}: extent");
        }
        assert_eq!(x.is_initial, y.is_initial, "node {id}: is_initial");
        assert_eq!(x.removed, y.removed, "node {id}: removed");
        assert_eq!(x.canonical, y.canonical, "node {id}: canonical");
        assert_eq!(x.valid, y.valid, "node {id}: valid");
        assert_eq!(x.profit.to_bits(), y.profit.to_bits(), "node {id}: profit");
        assert_eq!(
            x.slb_profit.to_bits(),
            y.slb_profit.to_bits(),
            "node {id}: slb_profit"
        );
        let sorted = |v: &[u32]| {
            let mut v = v.to_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(
            sorted(&x.children),
            sorted(&y.children),
            "node {id}: children"
        );
        assert_eq!(sorted(&x.parents), sorted(&y.parents), "node {id}: parents");
        assert_eq!(
            sorted(&x.slb_slices),
            sorted(&y.slb_slices),
            "node {id}: slb_slices"
        );
    }
}

#[test]
fn seed_reference_matches_engine_on_running_example() {
    let mut terms = Interner::new();
    let (src, kb) = skyrocket(&mut terms);
    let table = FactTable::build(&src, &kb);
    assert_parity(&table, &MidasConfig::running_example());
}

#[test]
fn seed_reference_matches_engine_on_synthetic() {
    let ds = generate(&SyntheticConfig::new(1_000, 20, 10, 42));
    let table = FactTable::build(&ds.sources[0], &ds.kb);
    assert_parity(&table, &MidasConfig::default());
    let no_prune = MidasConfig {
        disable_profit_pruning: true,
        ..MidasConfig::default()
    };
    assert_parity(&table, &no_prune);
}
