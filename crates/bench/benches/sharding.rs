//! Microbench: the shard-by-parent keying of the §III-B framework.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use midas_weburl::{shard_by_parent, SourceUrl};

fn bench_sharding(c: &mut Criterion) {
    let urls: Vec<SourceUrl> = (0..10_000)
        .map(|i| {
            SourceUrl::parse(&format!(
                "http://domain{}.example.com/section{}/page{}.html",
                i % 200,
                i % 17,
                i
            ))
            .expect("static URL parses")
        })
        .collect();

    c.bench_function("shard/10k_pages_by_parent", |b| {
        b.iter(|| {
            let items: Vec<(SourceUrl, usize)> = urls
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, u)| (u, i))
                .collect();
            let (shards, domains) = shard_by_parent(items);
            black_box((shards.len(), domains.len()))
        })
    });

    c.bench_function("shard/url_parse_normalise", |b| {
        b.iter(|| {
            let mut depth = 0usize;
            for i in 0..1_000 {
                let u = SourceUrl::parse(&format!("HTTPS://WWW.Example.COM//a/b{}//c?q=1#f", i))
                    .expect("parses");
                depth += u.depth();
            }
            black_box(depth)
        })
    });
}

criterion_group!(benches, bench_sharding);
criterion_main!(benches);
