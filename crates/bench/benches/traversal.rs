//! Microbench: Algorithm 1 (top-down traversal) on a pre-built hierarchy.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use midas_core::traversal::traverse;
use midas_core::{FactTable, MidasConfig, ProfitCtx, SliceHierarchy};
use midas_extract::synthetic::{generate, SyntheticConfig};

fn bench_traversal(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig::new(5_000, 20, 10, 42));
    let cfg = MidasConfig::default();
    let table = FactTable::build(&ds.sources[0], &ds.kb);
    let ctx = ProfitCtx::new(&table, cfg.cost);
    let hierarchy = SliceHierarchy::build(&table, &ctx, &cfg);

    c.bench_function("traversal/algorithm_1", |b| {
        b.iter(|| black_box(traverse(&hierarchy, &ctx).len()))
    });

    // Without profit pruning the traversal sees many more valid nodes.
    let cfg_np = MidasConfig {
        disable_profit_pruning: true,
        ..MidasConfig::default()
    };
    let h_np = SliceHierarchy::build(&table, &ctx, &cfg_np);
    c.bench_function("traversal/algorithm_1_unpruned", |b| {
        b.iter(|| black_box(traverse(&h_np, &ctx).len()))
    });
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
