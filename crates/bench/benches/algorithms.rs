//! End-to-end algorithm comparison on the §IV-D synthetic workload — the
//! criterion companion to Figure 11b/11d.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use midas_baselines::{AggCluster, Greedy, Naive};
use midas_core::{DetectInput, MidasAlg, MidasConfig, SliceDetector};
use midas_extract::synthetic::{generate, SyntheticConfig};

fn bench_algorithms(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig::new(2_500, 20, 10, 42));
    let cfg = MidasConfig::default();
    let src = &ds.sources[0];

    let mut group = c.benchmark_group("algorithms_n2500");
    group.sample_size(10);

    let midas = MidasAlg::new(cfg.clone());
    group.bench_function("midas", |b| {
        b.iter(|| {
            black_box(
                midas
                    .detect(DetectInput {
                        source: src,
                        kb: &ds.kb,
                        seeds: &[],
                    })
                    .len(),
            )
        })
    });

    let greedy = Greedy::new(cfg.cost);
    group.bench_function("greedy", |b| {
        b.iter(|| {
            black_box(
                greedy
                    .detect(DetectInput {
                        source: src,
                        kb: &ds.kb,
                        seeds: &[],
                    })
                    .len(),
            )
        })
    });

    let agg = AggCluster::new(cfg.cost);
    group.bench_function("aggcluster", |b| {
        b.iter(|| {
            black_box(
                agg.detect(DetectInput {
                    source: src,
                    kb: &ds.kb,
                    seeds: &[],
                })
                .len(),
            )
        })
    });

    let naive = Naive::new(cfg.cost);
    group.bench_function("naive", |b| {
        b.iter(|| {
            black_box(
                naive
                    .detect(DetectInput {
                        source: src,
                        kb: &ds.kb,
                        seeds: &[],
                    })
                    .len(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
