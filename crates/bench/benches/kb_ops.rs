//! Microbench: knowledge-base substrate operations — insert, membership,
//! conjunctive queries, and binary snapshot IO.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use midas_kb::{ConjunctiveQuery, Fact, Interner, KnowledgeBase};

fn build(n: usize) -> (Interner, KnowledgeBase, Vec<Fact>) {
    let mut terms = Interner::new();
    let mut facts = Vec::with_capacity(n);
    for i in 0..n {
        facts.push(Fact::intern(
            &mut terms,
            &format!("entity_{}", i % (n / 4).max(1)),
            &format!("pred_{}", i % 13),
            &format!("value_{}", i % 97),
        ));
    }
    let kb: KnowledgeBase = facts.iter().copied().collect();
    (terms, kb, facts)
}

fn bench_kb(c: &mut Criterion) {
    let (mut terms, kb, facts) = build(50_000);

    c.bench_function("kb/insert_50k", |b| {
        b.iter(|| {
            let mut fresh = KnowledgeBase::new();
            fresh.extend(facts.iter().copied());
            black_box(fresh.len())
        })
    });

    c.bench_function("kb/contains_hot", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for f in facts.iter().take(10_000) {
                if kb.contains(black_box(f)) {
                    hits += 1;
                }
            }
            hits
        })
    });

    let pred = terms.intern("pred_3");
    let value = terms.intern("value_42");
    c.bench_function("kb/conjunctive_query", |b| {
        let q = ConjunctiveQuery::new().with_property(pred, value);
        b.iter(|| black_box(q.count(&kb)))
    });

    c.bench_function("kb/snapshot_save_load", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            midas_kb::persist::save(&mut buf, &terms, &kb).unwrap();
            let (t2, kb2) = midas_kb::persist::load(&buf[..]).unwrap();
            black_box((t2.len(), kb2.len()))
        })
    });
}

criterion_group!(benches, bench_kb);
criterion_main!(benches);
