//! Microbench: the Definition 9 profit function — single slices, slice
//! sets, and incremental marginals.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use midas_core::{FactTable, MidasConfig, ProfitCtx};
use midas_extract::synthetic::{generate, SyntheticConfig};

fn bench_profit(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig::new(5_000, 20, 10, 42));
    let cfg = MidasConfig::default();
    let table = FactTable::build(&ds.sources[0], &ds.kb);
    let ctx = ProfitCtx::new(&table, cfg.cost);
    let all: Vec<u32> = (0..table.num_entities() as u32).collect();
    let half: Vec<u32> = all.iter().copied().step_by(2).collect();

    c.bench_function("profit/single_1000_entities", |b| {
        b.iter(|| black_box(ctx.profit_single(&all)))
    });

    c.bench_function("profit/set_union_500", |b| {
        b.iter(|| black_box(ctx.profit_set(&half, 10)))
    });

    c.bench_function("profit/accumulator_add_marginal", |b| {
        b.iter(|| {
            let mut acc = ctx.accumulator();
            let m1 = acc.marginal(&ctx, &half);
            acc.add(&ctx, &half);
            let m2 = acc.marginal(&ctx, &all);
            acc.add(&ctx, &all);
            black_box((m1, m2, acc.profit(&ctx)))
        })
    });
}

criterion_group!(benches, bench_profit);
criterion_main!(benches);
