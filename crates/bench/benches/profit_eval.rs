//! Microbench: the Definition 9 profit function — single slices, slice
//! sets, and incremental marginals.
//!
//! Runs at the largest synthetic size of the hierarchy bench (50k facts,
//! 10k entities), with 4 broad slices so property extents have the
//! 25%-of-universe coverage profile of the high-profit slices Algorithm 1
//! actually accumulates. The `profit_seed/*` entries run the same
//! workloads through the seed-era sorted-vec path
//! (`midas_bench::seed_reference`) for an in-binary before/after
//! comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use midas_bench::seed_reference::{seed_profit_single, SeedAccumulator};
use midas_core::{ExtentSet, FactTable, MidasConfig, ProfitCtx};
use midas_extract::synthetic::{generate, SyntheticConfig};

fn bench_profit(c: &mut Criterion) {
    midas_bench::install_metrics_hook();
    let ds = generate(&SyntheticConfig::new(50_000, 4, 2, 42));
    let cfg = MidasConfig::default();
    let table = FactTable::build(&ds.sources[0], &ds.kb);
    let ctx = ProfitCtx::new(&table, cfg.cost);
    let n = table.num_entities() as u32;
    let all = ExtentSet::full(n);
    let half = ExtentSet::from_sorted(n, (0..n).step_by(2).collect());
    // Algorithm 1's real workload: successive marginal/add over property
    // extents of the synthetic source. The profitable slices it accumulates
    // are the high-coverage ones, so bench the largest extents.
    let cat = table.catalog();
    let mut slice_extents: Vec<ExtentSet> = (0..cat.len() as u32)
        .map(|p| cat.extent(p).clone())
        .collect();
    slice_extents.sort_by_key(|x| std::cmp::Reverse(x.len()));
    slice_extents.truncate(16);
    assert!(slice_extents.len() == 16, "synthetic catalog too small");
    let slice_ids: Vec<Vec<u32>> = slice_extents.iter().map(|x| x.to_vec()).collect();

    c.bench_function("profit/single_full_universe", |b| {
        b.iter(|| black_box(ctx.profit_single(&all)))
    });

    c.bench_function("profit/set_union_half", |b| {
        b.iter(|| black_box(ctx.profit_set(&half, 10)))
    });

    c.bench_function("profit/accumulator_add_marginal", |b| {
        b.iter(|| {
            let mut acc = ctx.accumulator();
            let mut sum = 0.0;
            for x in &slice_extents {
                sum += acc.marginal(&ctx, x);
                acc.add(&ctx, x);
            }
            black_box((sum, acc.profit(&ctx)))
        })
    });

    // Seed-era reference path over the same workloads (sorted id vectors).
    let all_ids = all.to_vec();

    c.bench_function("profit_seed/single_full_universe", |b| {
        b.iter(|| black_box(seed_profit_single(&ctx, &all_ids)))
    });

    c.bench_function("profit_seed/accumulator_add_marginal", |b| {
        b.iter(|| {
            let mut acc = SeedAccumulator::new(&ctx);
            let mut sum = 0.0;
            for ids in &slice_ids {
                sum += acc.marginal(&ctx, ids);
                acc.add(&ctx, ids);
            }
            black_box((sum, acc.profit(&ctx)))
        })
    });
}

criterion_group!(benches, bench_profit);
criterion_main!(benches);
