//! Microbench: string interning throughput (the substrate every fact and
//! URL passes through).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use midas_kb::{Interner, SharedInterner};

fn bench_interning(c: &mut Criterion) {
    midas_bench::install_metrics_hook();
    let words: Vec<String> = (0..10_000)
        .map(|i| format!("entity_{}", i % 2_000))
        .collect();

    c.bench_function("interner/intern_10k_mixed", |b| {
        b.iter(|| {
            let mut interner = Interner::with_capacity(2_048);
            for w in &words {
                black_box(interner.intern(w));
            }
            interner.len()
        })
    });

    c.bench_function("interner/resolve_hot", |b| {
        let mut interner = Interner::new();
        let syms: Vec<_> = words.iter().map(|w| interner.intern(w)).collect();
        b.iter(|| {
            let mut total = 0usize;
            for &s in &syms {
                total += interner.resolve(black_box(s)).len();
            }
            total
        })
    });

    c.bench_function("interner/shared_intern_10k", |b| {
        b.iter(|| {
            let shared = SharedInterner::new();
            for w in &words {
                black_box(shared.intern(w));
            }
            shared.len()
        })
    });
}

criterion_group!(benches, bench_interning);
criterion_main!(benches);
