//! Microbench: slice-hierarchy construction (§III-A step 1) as the source
//! grows — the dominant cost of MIDASalg (Proposition 15: O(m·|P|)).
//!
//! The `hierarchy_build_seed` group runs the same construction through the
//! seed-era reference port (`midas_bench::seed_reference`) so the extent
//! engine's speedup is measurable inside one binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use midas_bench::seed_reference::{SeedHierarchy, SeedLists};
use midas_core::{FactTable, MidasConfig, ProfitCtx, SliceHierarchy};
use midas_extract::synthetic::{generate, SyntheticConfig};

fn bench_hierarchy(c: &mut Criterion) {
    midas_bench::install_metrics_hook();
    let mut group = c.benchmark_group("hierarchy_build");
    group.sample_size(20);
    for &n in &[5_000usize, 20_000, 50_000] {
        let ds = generate(&SyntheticConfig::new(n, 20, 10, 42));
        let cfg = MidasConfig::default();
        let table = FactTable::build(&ds.sources[0], &ds.kb);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let ctx = ProfitCtx::new(&table, cfg.cost);
                SliceHierarchy::build(&table, &ctx, &cfg).len()
            })
        });
    }
    group.finish();
}

fn bench_hierarchy_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_build_seed");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000, 50_000] {
        let ds = generate(&SyntheticConfig::new(n, 20, 10, 42));
        let cfg = MidasConfig::default();
        let table = FactTable::build(&ds.sources[0], &ds.kb);
        let lists = SeedLists::from_table(&table);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let ctx = ProfitCtx::new(&table, cfg.cost);
                SeedHierarchy::build(&table, &lists, &ctx, &cfg).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy, bench_hierarchy_seed);
criterion_main!(benches);
