//! Microbench: slice-hierarchy construction (§III-A step 1) as the source
//! grows — the dominant cost of MIDASalg (Proposition 15: O(m·|P|)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use midas_core::{FactTable, MidasConfig, ProfitCtx, SliceHierarchy};
use midas_extract::synthetic::{generate, SyntheticConfig};

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_build");
    group.sample_size(20);
    for &n in &[1_000usize, 2_500, 5_000] {
        let ds = generate(&SyntheticConfig::new(n, 20, 10, 42));
        let cfg = MidasConfig::default();
        let table = FactTable::build(&ds.sources[0], &ds.kb);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let ctx = ProfitCtx::new(&table, cfg.cost);
                SliceHierarchy::build(&table, &ctx, &cfg).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
