//! Parallel speed-up of the §III-B framework: the same slim corpus with a
//! growing worker pool (the paper parallelised via MapReduce sharding).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use midas_core::{Framework, MidasAlg, MidasConfig};
use midas_extract::slim::{generate, SlimConfig, SlimFlavor};

fn bench_framework(c: &mut Criterion) {
    let ds = generate(&SlimConfig {
        flavor: SlimFlavor::ReVerb,
        scale: 0.004,
        seed: 42,
    });
    let cfg = MidasConfig::default();

    let mut group = c.benchmark_group("framework_threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let alg = MidasAlg::new(cfg.clone());
                let fw = Framework::new(&alg, cfg.cost).with_threads(t);
                black_box(fw.run(ds.sources.clone(), &ds.kb).slices.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_framework);
criterion_main!(benches);
