//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. low-profit pruning on/off (hierarchy size and build time);
//! 2. consolidation export policy (positive-only vs export-all);
//! 3. the per-entity initial-combination cap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use midas_core::{
    ExportPolicy, FactTable, Framework, MidasAlg, MidasConfig, ProfitCtx, SliceHierarchy,
};
use midas_extract::slim::{generate as slim_gen, SlimConfig, SlimFlavor};
use midas_extract::synthetic::{generate, SyntheticConfig};

fn bench_ablations(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig::new(2_500, 20, 10, 42));
    let table = FactTable::build(&ds.sources[0], &ds.kb);

    let mut group = c.benchmark_group("ablation_profit_pruning");
    group.sample_size(15);
    for (label, disable) in [("on", false), ("off", true)] {
        let cfg = MidasConfig {
            disable_profit_pruning: disable,
            ..MidasConfig::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let ctx = ProfitCtx::new(&table, cfg.cost);
                black_box(SliceHierarchy::build(&table, &ctx, &cfg).len())
            })
        });
    }
    group.finish();

    let slim = slim_gen(&SlimConfig {
        flavor: SlimFlavor::ReVerb,
        scale: 0.002,
        seed: 42,
    });
    let cfg = MidasConfig::default();
    let mut group = c.benchmark_group("ablation_export_policy");
    group.sample_size(10);
    for (label, policy, report_best) in [
        ("positive_only", ExportPolicy::PositiveOnly, false),
        ("export_all", ExportPolicy::ExportAll, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let alg = MidasAlg::new(MidasConfig {
                    always_report_best: report_best,
                    ..cfg.clone()
                });
                let fw = Framework::new(&alg, cfg.cost).with_policy(policy);
                black_box(fw.run(slim.sources.clone(), &slim.kb).slices.len())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_combo_cap");
    group.sample_size(15);
    for &cap in &[4usize, 16, 64] {
        let cfg = MidasConfig {
            max_initial_combinations_per_entity: cap,
            ..MidasConfig::default()
        };
        group.bench_function(cap.to_string(), |b| {
            b.iter(|| {
                let ctx = ProfitCtx::new(&table, cfg.cost);
                black_box(SliceHierarchy::build(&table, &ctx, &cfg).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
