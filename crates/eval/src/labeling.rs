//! The simulated annotator of §IV-B.
//!
//! For the full ReVerb/NELL corpora the paper has human workers label each
//! returned slice: sample `K = 20` (or fewer) entities, show their pages,
//! and record (a) `R_new`, the ratio of new facts for the covered entities,
//! and (b) `R_anno`, the ratio of entities that provide homogeneous
//! information; the slice is "correct" when both exceed 0.5.
//!
//! Our generators know the ground truth, so the annotator is mechanical:
//! `R_new` comes from the slice's own new/total fact counts (with an empty
//! knowledge base it degenerates to the binary 1.0-if-any-facts the paper
//! describes), and `R_anno` is the fraction of sampled entities the
//! generator marked as homogeneous (planted verticals vs forum noise).

use midas_core::DiscoveredSlice;
use midas_extract::GroundTruth;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The mechanical stand-in for the paper's crowd workers.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnotator {
    /// Number of entities sampled per slice (paper: 20).
    pub k: usize,
    /// Correctness threshold on both ratios (paper: 0.5).
    pub threshold: f64,
    /// Sampling seed (the paper samples randomly; we sample reproducibly).
    pub seed: u64,
}

impl Default for SimulatedAnnotator {
    fn default() -> Self {
        SimulatedAnnotator {
            k: 20,
            threshold: 0.5,
            seed: 7,
        }
    }
}

impl SimulatedAnnotator {
    /// `R_new` of a slice.
    pub fn r_new(&self, slice: &DiscoveredSlice) -> f64 {
        if slice.num_facts == 0 {
            0.0
        } else {
            slice.num_new_facts as f64 / slice.num_facts as f64
        }
    }

    /// `R_anno` of a slice: homogeneous fraction of ≤ K sampled entities.
    pub fn r_anno(&self, slice: &DiscoveredSlice, truth: &GroundTruth) -> f64 {
        if slice.entities.is_empty() {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ slice.entities.len() as u64);
        let sample: Vec<_> = slice
            .entities
            .choose_multiple(&mut rng, self.k.min(slice.entities.len()))
            .copied()
            .collect();
        sample.iter().filter(|&&e| truth.is_homogeneous(e)).count() as f64 / sample.len() as f64
    }

    /// The §IV-B correctness criterion.
    pub fn is_correct(&self, slice: &DiscoveredSlice, truth: &GroundTruth) -> bool {
        self.r_new(slice) > self.threshold && self.r_anno(slice, truth) > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_kb::{Interner, Symbol};
    use midas_weburl::SourceUrl;

    fn slice_with(
        t: &mut Interner,
        entities: &[&str],
        num_facts: usize,
        num_new: usize,
    ) -> DiscoveredSlice {
        let mut es: Vec<Symbol> = entities.iter().map(|e| t.intern(e)).collect();
        es.sort_unstable();
        DiscoveredSlice {
            source: SourceUrl::parse("http://a.com/x").unwrap(),
            properties: vec![],
            entities: es,
            num_facts,
            num_new_facts: num_new,
            profit: 1.0,
        }
    }

    #[test]
    fn homogeneous_new_slice_is_correct() {
        let mut t = Interner::new();
        let s = slice_with(&mut t, &["a", "b", "c"], 10, 8);
        let mut truth = GroundTruth::default();
        for e in &s.entities {
            truth.homogeneous_entities.insert(*e);
        }
        let ann = SimulatedAnnotator::default();
        assert!(ann.r_new(&s) > 0.5);
        assert_eq!(ann.r_anno(&s, &truth), 1.0);
        assert!(ann.is_correct(&s, &truth));
    }

    #[test]
    fn forum_slice_fails_r_anno() {
        let mut t = Interner::new();
        let s = slice_with(&mut t, &["p1", "p2", "p3", "p4"], 10, 10);
        let truth = GroundTruth::default(); // nobody homogeneous
        let ann = SimulatedAnnotator::default();
        assert_eq!(ann.r_anno(&s, &truth), 0.0);
        assert!(!ann.is_correct(&s, &truth));
    }

    #[test]
    fn known_content_fails_r_new() {
        let mut t = Interner::new();
        let s = slice_with(&mut t, &["a", "b"], 10, 2);
        let mut truth = GroundTruth::default();
        for e in &s.entities {
            truth.homogeneous_entities.insert(*e);
        }
        let ann = SimulatedAnnotator::default();
        assert!(ann.r_new(&s) < 0.5);
        assert!(!ann.is_correct(&s, &truth));
    }

    #[test]
    fn sampling_caps_at_k() {
        let mut t = Interner::new();
        let names: Vec<String> = (0..100).map(|i| format!("e{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let s = slice_with(&mut t, &refs, 100, 100);
        let mut truth = GroundTruth::default();
        // Exactly 30% homogeneous: the K=20 sample should land near 0.3.
        for e in s.entities.iter().take(30) {
            truth.homogeneous_entities.insert(*e);
        }
        let ann = SimulatedAnnotator::default();
        let r = ann.r_anno(&s, &truth);
        assert!((0.0..=1.0).contains(&r));
        assert!(!ann.is_correct(&s, &truth), "30% homogeneity should fail");
    }

    #[test]
    fn empty_slice_is_never_correct() {
        let mut t = Interner::new();
        let s = slice_with(&mut t, &[], 0, 0);
        let ann = SimulatedAnnotator::default();
        assert!(!ann.is_correct(&s, &GroundTruth::default()));
    }

    #[test]
    fn labeling_is_deterministic() {
        let mut t = Interner::new();
        let names: Vec<String> = (0..50).map(|i| format!("e{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let s = slice_with(&mut t, &refs, 50, 50);
        let mut truth = GroundTruth::default();
        for e in s.entities.iter().take(25) {
            truth.homogeneous_entities.insert(*e);
        }
        let ann = SimulatedAnnotator::default();
        assert_eq!(ann.r_anno(&s, &truth), ann.r_anno(&s, &truth));
    }
}
