//! Coverage-adjusted knowledge bases (§IV-B).
//!
//! *"to create a knowledge base of x% coverage, we (1) randomly select x% of
//! the slices from the Initial Silver Standard; (2) build a knowledge base
//! with the facts in the selected slices; (3) use the remaining slices
//! (those not selected in step 1) to form the optimal output for the new
//! knowledge base."*

use midas_extract::{Dataset, GoldSlice};
use midas_kb::fnv::FnvHashSet;
use midas_kb::{KnowledgeBase, Symbol};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds the x%-coverage knowledge base and the matching optimal output.
///
/// Returns `(kb, remaining_gold)`. The knowledge base contains the
/// dataset's original KB plus all facts of the selected silver slices.
pub fn coverage_adjusted(
    dataset: &Dataset,
    coverage: f64,
    seed: u64,
) -> (KnowledgeBase, Vec<GoldSlice>) {
    assert!(
        (0.0..=1.0).contains(&coverage),
        "coverage must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..dataset.truth.gold.len()).collect();
    order.shuffle(&mut rng);
    let n_selected = (dataset.truth.gold.len() as f64 * coverage).round() as usize;
    let selected: FnvHashSet<usize> = order[..n_selected].iter().copied().collect();

    let mut kb = dataset.kb.clone();
    // Facts of a gold slice: every fact of its entities under its source.
    let mut selected_entities_by_slice: Vec<(&GoldSlice, FnvHashSet<Symbol>)> = Vec::new();
    for (i, g) in dataset.truth.gold.iter().enumerate() {
        if selected.contains(&i) {
            selected_entities_by_slice.push((g, g.entities.iter().copied().collect()));
        }
    }
    for src in &dataset.sources {
        for (g, entities) in &selected_entities_by_slice {
            if g.source.contains(&src.url) {
                for f in &src.facts {
                    if entities.contains(&f.subject) {
                        kb.insert(*f);
                    }
                }
            }
        }
    }

    let remaining: Vec<GoldSlice> = dataset
        .truth
        .gold
        .iter()
        .enumerate()
        .filter(|(i, _)| !selected.contains(i))
        .map(|(_, g)| g.clone())
        .collect();
    (kb, remaining)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_extract::slim::{generate, SlimConfig, SlimFlavor};

    fn tiny() -> Dataset {
        generate(&SlimConfig {
            flavor: SlimFlavor::ReVerb,
            scale: 0.002,
            seed: 11,
        })
    }

    #[test]
    fn zero_coverage_changes_nothing() {
        let ds = tiny();
        let (kb, remaining) = coverage_adjusted(&ds, 0.0, 1);
        assert_eq!(kb.len(), ds.kb.len());
        assert_eq!(remaining.len(), ds.truth.gold.len());
    }

    #[test]
    fn full_coverage_loads_everything_and_empties_gold() {
        let ds = tiny();
        let (kb, remaining) = coverage_adjusted(&ds, 1.0, 1);
        assert!(remaining.is_empty());
        assert!(kb.len() > ds.kb.len());
    }

    #[test]
    fn partial_coverage_splits_gold() {
        let ds = tiny();
        let total = ds.truth.gold.len();
        let (kb, remaining) = coverage_adjusted(&ds, 0.4, 2);
        let expected_selected = (total as f64 * 0.4).round() as usize;
        assert_eq!(remaining.len(), total - expected_selected);
        assert!(!kb.is_empty());
        // Facts of selected slices are now known.
        let selected: Vec<&GoldSlice> = ds
            .truth
            .gold
            .iter()
            .filter(|g| !remaining.iter().any(|r| r.description == g.description))
            .collect();
        let mut checked = 0;
        for src in &ds.sources {
            for g in &selected {
                if g.source.contains(&src.url) {
                    for f in &src.facts {
                        if g.entities.binary_search(&f.subject).is_ok() {
                            assert!(kb.contains(f), "selected slice fact must be in KB");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 0, "sanity: some facts verified");
    }

    #[test]
    fn different_seeds_select_different_subsets() {
        let ds = tiny();
        let (_, r1) = coverage_adjusted(&ds, 0.5, 1);
        let (_, r2) = coverage_adjusted(&ds, 0.5, 99);
        let d1: Vec<&str> = r1.iter().map(|g| g.description.as_str()).collect();
        let d2: Vec<&str> = r2.iter().map(|g| g.description.as_str()).collect();
        assert_ne!(d1, d2, "random selection should differ across seeds");
    }

    #[test]
    #[should_panic(expected = "coverage must be in [0, 1]")]
    fn rejects_out_of_range_coverage() {
        let ds = tiny();
        let _ = coverage_adjusted(&ds, 1.5, 0);
    }
}
