//! Timed algorithm runs over a corpus.

use midas_core::{
    DetectInput, Framework, MidasAlg, MidasConfig, SliceDetector, SourceFacts,
};
use midas_kb::KnowledgeBase;
use midas_weburl::SourceUrl;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use midas_core::DiscoveredSlice;

/// One algorithm run: its ranked slices and wall-clock time.
#[derive(Debug)]
pub struct RunResult {
    /// Algorithm name.
    pub name: String,
    /// Returned slices, ranked (by profit, or new-fact count for NAIVE).
    pub slices: Vec<DiscoveredSlice>,
    /// Wall-clock duration of the run.
    pub duration: Duration,
}

impl RunResult {
    /// Keeps only positive-profit slices (what an operator would act on).
    pub fn positive(&self) -> Vec<DiscoveredSlice> {
        self.slices.iter().filter(|s| s.profit > 0.0).cloned().collect()
    }
}

/// Merges page-level sources into one source per web domain.
///
/// The single-source baselines (GREEDY, AGGCLUSTER) operate per web source;
/// running them at page granularity would fragment every vertical, so the
/// evaluation gives them the domain-merged corpus — the most favourable
/// granularity for them.
pub fn merge_by_domain(sources: &[SourceFacts]) -> Vec<SourceFacts> {
    let mut by_domain: BTreeMap<SourceUrl, Vec<SourceFacts>> = BTreeMap::new();
    for s in sources {
        by_domain
            .entry(s.url.domain())
            .or_default()
            .push(s.clone());
    }
    by_domain
        .into_iter()
        .map(|(domain, children)| SourceFacts::merge(domain, children))
        .collect()
}

/// Runs `detector` independently on every source, ranking the union of the
/// returned slices by profit.
pub fn run_detector_per_source<D: SliceDetector>(
    detector: &D,
    sources: &[SourceFacts],
    kb: &KnowledgeBase,
) -> RunResult {
    let start = Instant::now();
    let mut slices = Vec::new();
    for src in sources {
        slices.extend(detector.detect(DetectInput {
            source: src,
            kb,
            seeds: &[],
        }));
    }
    slices.sort_by(|a, b| b.profit.partial_cmp(&a.profit).expect("finite profits"));
    RunResult {
        name: detector.name().to_owned(),
        slices,
        duration: start.elapsed(),
    }
}

/// Runs the full MIDAS framework (MIDASalg + shard/detect/consolidate).
pub fn run_midas_framework(
    config: &MidasConfig,
    sources: Vec<SourceFacts>,
    kb: &KnowledgeBase,
    threads: usize,
) -> RunResult {
    let alg = MidasAlg::new(config.clone());
    let fw = Framework::new(&alg, config.cost).with_threads(threads);
    let start = Instant::now();
    let report = fw.run(sources, kb);
    RunResult {
        name: "midas".to_owned(),
        slices: report.slices,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_baselines::{Greedy, Naive};
    use midas_core::fixtures::skyrocket_pages;
    use midas_core::CostModel;
    use midas_kb::Interner;

    #[test]
    fn merge_by_domain_collapses_pages() {
        let mut t = Interner::new();
        let (pages, _) = skyrocket_pages(&mut t);
        let merged = merge_by_domain(&pages);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].url.as_str(), "http://space.skyrocket.de");
        assert_eq!(merged[0].len(), 13);
    }

    #[test]
    fn per_source_run_ranks_by_profit() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let greedy = Greedy::new(CostModel::running_example());
        let result = run_detector_per_source(&greedy, &pages, &kb);
        assert_eq!(result.name, "greedy");
        assert_eq!(
            result.slices.len(),
            2,
            "only the two rocket-family pages have a profitable condition"
        );
        for w in result.slices.windows(2) {
            assert!(w[0].profit >= w[1].profit);
        }
        assert_eq!(result.positive().len(), 2);
    }

    #[test]
    fn framework_run_produces_s5() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let result =
            run_midas_framework(&MidasConfig::running_example(), pages, &kb, 2);
        assert_eq!(result.name, "midas");
        assert_eq!(result.slices.len(), 1);
        assert!(result.duration.as_nanos() > 0);
    }

    #[test]
    fn naive_on_merged_domain_reports_whole_source() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let merged = merge_by_domain(&pages);
        let naive = Naive::new(CostModel::running_example());
        let result = run_detector_per_source(&naive, &merged, &kb);
        assert_eq!(result.slices.len(), 1);
        assert_eq!(result.slices[0].entities.len(), 5);
    }
}
