//! Timed algorithm runs over a corpus.

use midas_core::telemetry;
use midas_core::{
    AugmentationStep, Augmenter, DetectInput, Framework, MidasAlg, MidasConfig, Quarantine,
    SliceDetector, SourceBudget, SourceFacts, SourceFault, Stage,
};
use midas_kb::KnowledgeBase;
use midas_weburl::SourceUrl;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Run-level telemetry: one span per timed algorithm run and per
/// augmentation-loop suggest, so a trace shows the eval driver's shape
/// above the framework's shard/detect/consolidate spans.
mod metrics {
    midas_core::counter!(pub RUNS, "eval.runs");
    midas_core::counter!(pub AUG_ROUNDS, "eval.augment.rounds");
    midas_core::counter!(pub AUG_ACCEPTS, "eval.augment.accepts");
    midas_core::histogram!(pub RUN_NS, "eval.run_ns");
    midas_core::histogram!(pub SUGGEST_NS, "eval.augment.suggest_ns");
}

use midas_core::DiscoveredSlice;

/// One algorithm run: its ranked slices and wall-clock time.
#[derive(Debug)]
pub struct RunResult {
    /// Algorithm name.
    pub name: String,
    /// Returned slices, ranked (by profit, or new-fact count for NAIVE).
    pub slices: Vec<DiscoveredSlice>,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Sources dropped during the run (panics, budget breaches); empty for
    /// a clean run.
    pub quarantine: Quarantine,
}

impl RunResult {
    /// Keeps only positive-profit slices (what an operator would act on).
    pub fn positive(&self) -> Vec<DiscoveredSlice> {
        self.slices
            .iter()
            .filter(|s| s.profit > 0.0)
            .cloned()
            .collect()
    }
}

/// Merges page-level sources into one source per web domain.
///
/// The single-source baselines (GREEDY, AGGCLUSTER) operate per web source;
/// running them at page granularity would fragment every vertical, so the
/// evaluation gives them the domain-merged corpus — the most favourable
/// granularity for them.
pub fn merge_by_domain(sources: &[SourceFacts]) -> Vec<SourceFacts> {
    let mut by_domain: BTreeMap<SourceUrl, Vec<SourceFacts>> = BTreeMap::new();
    for s in sources {
        by_domain.entry(s.url.domain()).or_default().push(s.clone());
    }
    by_domain
        .into_iter()
        .map(|(domain, children)| SourceFacts::merge(domain, children))
        .collect()
}

/// Runs `detector` independently on every source, ranking the union of the
/// returned slices by profit. Equivalent to
/// [`run_detector_per_source_budgeted`] with an unlimited budget (every
/// source still runs panic-isolated).
pub fn run_detector_per_source<D: SliceDetector>(
    detector: &D,
    sources: &[SourceFacts],
    kb: &KnowledgeBase,
) -> RunResult {
    run_detector_per_source_budgeted(detector, sources, kb, SourceBudget::unlimited())
}

/// Runs `detector` independently on every source under a per-source budget,
/// ranking the union of the returned slices by profit. A source that panics
/// or breaches the budget is quarantined; the run continues.
pub fn run_detector_per_source_budgeted<D: SliceDetector>(
    detector: &D,
    sources: &[SourceFacts],
    kb: &KnowledgeBase,
    budget: SourceBudget,
) -> RunResult {
    metrics::RUNS.inc();
    let _run_span = telemetry::span("eval.run", &metrics::RUN_NS);
    let start = Instant::now();
    let mut slices = Vec::new();
    let mut quarantine = Quarantine::new();
    for src in sources {
        if let Some(cap) = budget.max_facts {
            if src.len() > cap {
                quarantine.push(SourceFault {
                    source: src.url.as_str().to_string(),
                    stage: Stage::Detect,
                    cause: midas_core::FaultCause::Budget(midas_core::BudgetBreach {
                        kind: midas_core::BreachKind::Facts,
                        limit: cap as u64,
                        observed: src.len() as u64,
                    }),
                    facts_seen: src.len(),
                });
                continue;
            }
        }
        let result = {
            let _scope = midas_core::BudgetScope::enter(&budget);
            detector.detect_isolated(DetectInput {
                source: src,
                kb,
                seeds: &[],
            })
        };
        match result {
            Ok(found) => slices.extend(found),
            Err(cause) => quarantine.push(SourceFault {
                source: src.url.as_str().to_string(),
                stage: Stage::Detect,
                cause,
                facts_seen: src.len(),
            }),
        }
    }
    slices.sort_by(|a, b| b.profit.partial_cmp(&a.profit).expect("finite profits"));
    RunResult {
        name: detector.name().to_owned(),
        slices,
        duration: start.elapsed(),
        quarantine,
    }
}

/// Runs the full MIDAS framework (MIDASalg + shard/detect/consolidate),
/// enforcing `config.budget` per source.
pub fn run_midas_framework(
    config: &MidasConfig,
    sources: Vec<SourceFacts>,
    kb: &KnowledgeBase,
    threads: usize,
) -> RunResult {
    let alg = MidasAlg::new(config.clone());
    let fw = Framework::new(&alg, config.cost)
        .with_threads(threads)
        .with_budget(config.budget)
        .with_stream_window(config.stream_window);
    metrics::RUNS.inc();
    let run_span = telemetry::span("eval.run", &metrics::RUN_NS);
    let start = Instant::now();
    let report = fw.run(sources, kb);
    drop(run_span);
    RunResult {
        name: "midas".to_owned(),
        slices: report.slices,
        duration: start.elapsed(),
        quarantine: report.quarantine,
    }
}

/// Like [`run_midas_framework`], but round-0 detection runs on the prebuilt
/// fact tables in `tables` (keyed by source URL) — the warm path for corpora
/// loaded from a `--snapshot-cache` hit. Bit-identical results to the cold
/// run; only per-source table construction is skipped.
pub fn run_midas_framework_with_tables(
    config: &MidasConfig,
    sources: Vec<SourceFacts>,
    kb: &KnowledgeBase,
    threads: usize,
    tables: &BTreeMap<SourceUrl, midas_core::FactTable>,
) -> RunResult {
    let alg = MidasAlg::new(config.clone());
    let fw = Framework::new(&alg, config.cost)
        .with_threads(threads)
        .with_budget(config.budget)
        .with_stream_window(config.stream_window);
    metrics::RUNS.inc();
    let run_span = telemetry::span("eval.run", &metrics::RUN_NS);
    let start = Instant::now();
    let report = fw.run_with_tables(sources, kb, tables);
    drop(run_span);
    RunResult {
        name: "midas".to_owned(),
        slices: report.slices,
        duration: start.elapsed(),
        quarantine: report.quarantine,
    }
}

/// One round of the incremental augmentation loop, timed.
#[derive(Debug, Clone)]
pub struct AugmentationRound {
    /// 1-based round number.
    pub round: usize,
    /// The accepted top suggestion, if any positive-profit slice remained.
    pub accepted: Option<AugmentationStep>,
    /// Wall-clock time of the incremental `suggest`.
    pub suggest_time: Duration,
    /// Number of suggestions the round produced.
    pub suggestions: usize,
    /// Detector invocations actually executed this round.
    pub detect_calls: usize,
    /// Task outcomes replayed from the incremental cache this round.
    pub reused_tasks: usize,
    /// Knowledge-base size after the round's accept (if any).
    pub kb_size: usize,
    /// The per-source wall-clock deadline (in milliseconds) the round ran
    /// under, if any. Recorded so `augment --resume` can verify a resumed
    /// run continues with the budget the trace was produced under (a
    /// mismatch restarts the incremental engine cold instead of replaying).
    pub budget_ms: Option<u64>,
    /// Sources quarantined during the round's suggest.
    pub quarantine: Quarantine,
}

/// Drives the incremental augmentation loop: suggest, accept the top
/// positive-profit slice, repeat — up to `max_rounds` or until saturation
/// (no positive suggestion, or an accept that adds no facts). Returns the
/// per-round trace and the final [`Augmenter`] (for its KB and history).
pub fn run_augmentation(
    config: &MidasConfig,
    sources: Vec<SourceFacts>,
    kb: KnowledgeBase,
    threads: usize,
    max_rounds: usize,
) -> (Vec<AugmentationRound>, Augmenter) {
    let mut aug = Augmenter::new(config.clone(), sources, kb).with_threads(threads);
    let rounds = continue_augmentation(&mut aug, 1, max_rounds, |_| {});
    (rounds, aug)
}

/// Continues the augmentation loop on an existing [`Augmenter`] from
/// `start_round` (1-based) through `max_rounds`, invoking `on_round` after
/// each completed round — the hook where `augment --resume` checkpoints the
/// round durably before the next one begins. Returns only the rounds run
/// here; the caller prepends any replayed prefix.
pub fn continue_augmentation(
    aug: &mut Augmenter,
    start_round: usize,
    max_rounds: usize,
    mut on_round: impl FnMut(&AugmentationRound),
) -> Vec<AugmentationRound> {
    let mut rounds = Vec::new();
    let budget_ms = aug.config().budget.deadline.map(|d| d.as_millis() as u64);
    for round in start_round..=max_rounds {
        metrics::AUG_ROUNDS.inc();
        let suggest_span = telemetry::span("augment.suggest", &metrics::SUGGEST_NS);
        let start = Instant::now();
        let report = aug.suggest_report();
        let suggest_time = start.elapsed();
        drop(suggest_span);
        let best = report.slices.iter().find(|s| s.profit > 0.0).cloned();
        let accepted = best.as_ref().map(|b| aug.accept(b));
        if accepted.is_some() {
            metrics::AUG_ACCEPTS.inc();
        }
        let saturated = accepted.is_none();
        let stalled = matches!(&accepted, Some(s) if s.facts_added == 0);
        let done = AugmentationRound {
            round,
            accepted,
            suggest_time,
            suggestions: report.slices.len(),
            detect_calls: report.detect_calls,
            reused_tasks: report.reused,
            kb_size: aug.kb().len(),
            budget_ms,
            quarantine: report.quarantine,
        };
        on_round(&done);
        rounds.push(done);
        if saturated || stalled {
            break;
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_baselines::{Greedy, Naive};
    use midas_core::fixtures::skyrocket_pages;
    use midas_core::CostModel;
    use midas_kb::Interner;

    #[test]
    fn merge_by_domain_collapses_pages() {
        let mut t = Interner::new();
        let (pages, _) = skyrocket_pages(&mut t);
        let merged = merge_by_domain(&pages);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].url.as_str(), "http://space.skyrocket.de");
        assert_eq!(merged[0].len(), 13);
    }

    #[test]
    fn per_source_run_ranks_by_profit() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let greedy = Greedy::new(CostModel::running_example());
        let result = run_detector_per_source(&greedy, &pages, &kb);
        assert_eq!(result.name, "greedy");
        assert_eq!(
            result.slices.len(),
            2,
            "only the two rocket-family pages have a profitable condition"
        );
        for w in result.slices.windows(2) {
            assert!(w[0].profit >= w[1].profit);
        }
        assert_eq!(result.positive().len(), 2);
    }

    #[test]
    fn augmentation_loop_saturates_running_example() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let (rounds, aug) = run_augmentation(&MidasConfig::running_example(), pages, kb, 2, 10);
        // Round 1 accepts S5; round 2 finds nothing and stops.
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].accepted.as_ref().unwrap().facts_added, 6);
        assert!(rounds[1].accepted.is_none());
        assert!(rounds[1].reused_tasks > 0, "round 2 replays clean subtrees");
        assert_eq!(aug.history().len(), 1);
    }

    #[test]
    fn framework_run_produces_s5() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let result = run_midas_framework(&MidasConfig::running_example(), pages, &kb, 2);
        assert_eq!(result.name, "midas");
        assert_eq!(result.slices.len(), 1);
        assert!(result.duration.as_nanos() > 0);
    }

    #[test]
    fn budgeted_run_quarantines_oversized_sources() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let greedy = Greedy::new(CostModel::running_example());
        let largest = pages.iter().map(SourceFacts::len).max().unwrap();
        let over_cap = pages.iter().filter(|p| p.len() >= largest).count();
        let budget = SourceBudget::unlimited().with_max_facts(largest - 1);
        let result = run_detector_per_source_budgeted(&greedy, &pages, &kb, budget);
        assert_eq!(result.quarantine.len(), over_cap);
        for fault in result.quarantine.iter() {
            assert_eq!(fault.stage, Stage::Detect);
            assert_eq!(fault.cause.tag(), "budget");
            assert_eq!(fault.facts_seen, largest);
        }
        // The unbudgeted wrapper quarantines nothing on the same corpus.
        let clean = run_detector_per_source(&greedy, &pages, &kb);
        assert!(clean.quarantine.is_empty());
    }

    #[test]
    fn naive_on_merged_domain_reports_whole_source() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let merged = merge_by_domain(&pages);
        let naive = Naive::new(CostModel::running_example());
        let result = run_detector_per_source(&naive, &merged, &kb);
        assert_eq!(result.slices.len(), 1);
        assert_eq!(result.slices[0].entities.len(), 5);
    }
}
