//! Precision / recall / F-measure against a gold standard.
//!
//! §IV-B: *"Precision measures the fraction of returned slices that are of
//! high profit, as per our labeling. Recall measures the fraction of
//! high-profit slices in our silver standard that are returned. … we use
//! Jaccard similarity to compare two slices and consider them as equivalent
//! when the Jaccard similarity is above 0.95."*

use midas_core::DiscoveredSlice;
use midas_extract::GoldSlice;

/// The Jaccard threshold of §IV-B.
pub const JACCARD_THRESHOLD: f64 = 0.95;

/// Precision, recall, and their harmonic mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    /// Fraction of returned slices matching some gold slice.
    pub precision: f64,
    /// Fraction of gold slices matched by some returned slice.
    pub recall: f64,
    /// `2·P·R / (P + R)` (0 when both are 0).
    pub f_measure: f64,
}

impl Prf {
    /// Combines raw precision and recall.
    pub fn new(precision: f64, recall: f64) -> Self {
        let f_measure = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Prf {
            precision,
            recall,
            f_measure,
        }
    }
}

/// Whether `slice` is equivalent to `gold` under the paper's criterion:
/// entity-Jaccard ≥ 0.95 and source compatibility (one URL contains the
/// other — a slice reported at the domain can match a gold slice at a
/// section, and vice versa).
pub fn matches_gold(slice: &DiscoveredSlice, gold: &GoldSlice) -> bool {
    (gold.source.contains(&slice.source) || slice.source.contains(&gold.source))
        && gold.jaccard_entities(&slice.entities) >= JACCARD_THRESHOLD
}

/// Matches returned slices to the gold standard.
///
/// Precision counts each returned slice that matches *some* gold slice;
/// recall counts each gold slice matched by *some* returned slice (a gold
/// slice can satisfy several near-duplicate returns without double-counting
/// recall).
pub fn match_to_gold(slices: &[DiscoveredSlice], gold: &[GoldSlice]) -> Prf {
    if slices.is_empty() {
        return Prf::new(0.0, 0.0);
    }
    let mut matched_gold = vec![false; gold.len()];
    let mut matched_slices = 0usize;
    for s in slices {
        let mut hit = false;
        for (gi, g) in gold.iter().enumerate() {
            if matches_gold(s, g) {
                hit = true;
                matched_gold[gi] = true;
            }
        }
        if hit {
            matched_slices += 1;
        }
    }
    let precision = matched_slices as f64 / slices.len() as f64;
    let recall = if gold.is_empty() {
        0.0
    } else {
        matched_gold.iter().filter(|&&m| m).count() as f64 / gold.len() as f64
    };
    Prf::new(precision, recall)
}

/// Top-k precision under an arbitrary per-slice correctness oracle
/// (the simulated annotator for ReVerb/NELL, Figure 10a/c). `slices` must
/// already be ranked.
pub fn top_k_precision(
    slices: &[DiscoveredSlice],
    k: usize,
    mut is_correct: impl FnMut(&DiscoveredSlice) -> bool,
) -> f64 {
    let top = &slices[..k.min(slices.len())];
    if top.is_empty() {
        return 0.0;
    }
    top.iter().filter(|s| is_correct(s)).count() as f64 / top.len() as f64
}

/// Points of a precision-recall curve: for every prefix length of the
/// ranked `slices`, the (recall, precision) against `gold` (Figure 9a/c/e).
pub fn pr_curve(slices: &[DiscoveredSlice], gold: &[GoldSlice]) -> Vec<(f64, f64)> {
    let mut points = Vec::with_capacity(slices.len());
    for k in 1..=slices.len() {
        let prf = match_to_gold(&slices[..k], gold);
        points.push((prf.recall, prf.precision));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_kb::{Interner, Symbol};
    use midas_weburl::SourceUrl;

    fn gold(t: &mut Interner, url: &str, entities: &[&str]) -> GoldSlice {
        let mut es: Vec<Symbol> = entities.iter().map(|e| t.intern(e)).collect();
        es.sort_unstable();
        GoldSlice {
            source: SourceUrl::parse(url).unwrap(),
            properties: vec![],
            entities: es,
            description: "gold".into(),
        }
    }

    fn slice(t: &mut Interner, url: &str, entities: &[&str]) -> DiscoveredSlice {
        let mut es: Vec<Symbol> = entities.iter().map(|e| t.intern(e)).collect();
        es.sort_unstable();
        DiscoveredSlice {
            source: SourceUrl::parse(url).unwrap(),
            properties: vec![],
            entities: es,
            num_facts: entities.len(),
            num_new_facts: entities.len(),
            profit: 1.0,
        }
    }

    #[test]
    fn perfect_match_gives_unit_prf() {
        let mut t = Interner::new();
        let g = vec![gold(&mut t, "http://a.com/dir", &["e1", "e2", "e3"])];
        let s = vec![slice(&mut t, "http://a.com/dir", &["e1", "e2", "e3"])];
        let prf = match_to_gold(&s, &g);
        assert_eq!(prf.precision, 1.0);
        assert_eq!(prf.recall, 1.0);
        assert_eq!(prf.f_measure, 1.0);
    }

    #[test]
    fn cross_granularity_matching_works() {
        let mut t = Interner::new();
        let g = vec![gold(&mut t, "http://a.com/dir", &["e1", "e2"])];
        // Slice reported at the domain level still matches.
        let s = vec![slice(&mut t, "http://a.com", &["e1", "e2"])];
        assert_eq!(match_to_gold(&s, &g).recall, 1.0);
        // Slice from another domain never matches.
        let other = vec![slice(&mut t, "http://b.com", &["e1", "e2"])];
        assert_eq!(match_to_gold(&other, &g).recall, 0.0);
    }

    #[test]
    fn jaccard_threshold_is_strict() {
        let mut t = Interner::new();
        let names: Vec<String> = (0..20).map(|i| format!("e{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let g = vec![gold(&mut t, "http://a.com", &refs)];
        // 19 of 20 entities → Jaccard 0.95 exactly: matches (≥ threshold).
        let s19 = vec![slice(&mut t, "http://a.com", &refs[..19])];
        assert_eq!(match_to_gold(&s19, &g).recall, 1.0);
        // 18 of 20 → Jaccard 0.9: no match.
        let s18 = vec![slice(&mut t, "http://a.com", &refs[..18])];
        assert_eq!(match_to_gold(&s18, &g).recall, 0.0);
    }

    #[test]
    fn precision_penalises_junk_returns() {
        let mut t = Interner::new();
        let g = vec![gold(&mut t, "http://a.com/dir", &["e1", "e2"])];
        let s = vec![
            slice(&mut t, "http://a.com/dir", &["e1", "e2"]),
            slice(&mut t, "http://a.com/other", &["x1", "x2"]),
        ];
        let prf = match_to_gold(&s, &g);
        assert_eq!(prf.precision, 0.5);
        assert_eq!(prf.recall, 1.0);
        assert!((prf.f_measure - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_returns_do_not_inflate_recall() {
        let mut t = Interner::new();
        let g = vec![
            gold(&mut t, "http://a.com/x", &["e1", "e2"]),
            gold(&mut t, "http://a.com/y", &["f1", "f2"]),
        ];
        let s = vec![
            slice(&mut t, "http://a.com/x", &["e1", "e2"]),
            slice(&mut t, "http://a.com/x", &["e1", "e2"]),
        ];
        let prf = match_to_gold(&s, &g);
        assert_eq!(prf.precision, 1.0);
        assert_eq!(prf.recall, 0.5);
    }

    #[test]
    fn empty_returns_are_zero() {
        let mut t = Interner::new();
        let g = vec![gold(&mut t, "http://a.com", &["e"])];
        let prf = match_to_gold(&[], &g);
        assert_eq!(prf.precision, 0.0);
        assert_eq!(prf.recall, 0.0);
        assert_eq!(prf.f_measure, 0.0);
    }

    #[test]
    fn top_k_precision_respects_ranking() {
        let mut t = Interner::new();
        let slices = vec![
            slice(&mut t, "http://good.com", &["g"]),
            slice(&mut t, "http://bad.com", &["b"]),
            slice(&mut t, "http://good2.com", &["g2"]),
        ];
        let is_good = |s: &DiscoveredSlice| s.source.as_str().contains("good");
        assert_eq!(top_k_precision(&slices, 1, is_good), 1.0);
        assert_eq!(top_k_precision(&slices, 2, is_good), 0.5);
        assert!((top_k_precision(&slices, 3, is_good) - 2.0 / 3.0).abs() < 1e-12);
        assert!((top_k_precision(&slices, 100, is_good) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(top_k_precision(&[], 5, is_good), 0.0);
    }

    #[test]
    fn pr_curve_is_monotone_in_recall() {
        let mut t = Interner::new();
        let g = vec![
            gold(&mut t, "http://a.com/x", &["e1"]),
            gold(&mut t, "http://a.com/y", &["e2"]),
        ];
        let s = vec![
            slice(&mut t, "http://a.com/x", &["e1"]),
            slice(&mut t, "http://a.com/junk", &["zz"]),
            slice(&mut t, "http://a.com/y", &["e2"]),
        ];
        let curve = pr_curve(&s, &g);
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0, "recall never decreases along the curve");
        }
        assert_eq!(curve[0], (0.5, 1.0));
        assert_eq!(curve[2].0, 1.0);
    }
}
