//! Bootstrap confidence intervals for the evaluation metrics.
//!
//! The paper reports point estimates; for the reproduction it is useful to
//! know how stable those estimates are under resampling of the returned
//! slices (precision) and of the gold standard (recall). This module
//! implements the standard percentile bootstrap with a seeded RNG.

use crate::metrics::{matches_gold, Prf};
use midas_core::DiscoveredSlice;
use midas_extract::GoldSlice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A percentile bootstrap interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Nominal coverage level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether a reference value lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lower..=self.upper).contains(&value)
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Bootstrap CIs for precision, recall, and F-measure.
///
/// Each of `resamples` iterations draws slices (for precision) and gold
/// slices (for recall) with replacement and recomputes the metric; the CI is
/// the `[α/2, 1 − α/2]` percentile band.
pub fn bootstrap_prf(
    slices: &[DiscoveredSlice],
    gold: &[GoldSlice],
    resamples: usize,
    level: f64,
    seed: u64,
) -> (ConfidenceInterval, ConfidenceInterval, ConfidenceInterval) {
    assert!(
        (0.0..1.0).contains(&(1.0 - level)),
        "level must be in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let point = crate::metrics::match_to_gold(slices, gold);

    // Precompute the bipartite match matrix once.
    let hits: Vec<Vec<bool>> = slices
        .iter()
        .map(|s| gold.iter().map(|g| matches_gold(s, g)).collect())
        .collect();

    let mut ps = Vec::with_capacity(resamples);
    let mut rs = Vec::with_capacity(resamples);
    let mut fs = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        // Resample slice indices and gold indices with replacement.
        let s_idx: Vec<usize> = (0..slices.len())
            .map(|_| rng.gen_range(0..slices.len().max(1)))
            .collect();
        let g_idx: Vec<usize> = (0..gold.len())
            .map(|_| rng.gen_range(0..gold.len().max(1)))
            .collect();
        let precision = if s_idx.is_empty() {
            0.0
        } else {
            s_idx
                .iter()
                .filter(|&&i| g_idx.iter().any(|&j| hits[i][j]))
                .count() as f64
                / s_idx.len() as f64
        };
        let recall = if g_idx.is_empty() {
            0.0
        } else {
            g_idx
                .iter()
                .filter(|&&j| s_idx.iter().any(|&i| hits[i][j]))
                .count() as f64
                / g_idx.len() as f64
        };
        let prf = Prf::new(precision, recall);
        ps.push(prf.precision);
        rs.push(prf.recall);
        fs.push(prf.f_measure);
    }
    for v in [&mut ps, &mut rs, &mut fs] {
        v.sort_by(f64::total_cmp);
    }
    let alpha = 1.0 - level;
    let make = |sorted: &[f64], estimate: f64| ConfidenceInterval {
        estimate,
        lower: percentile(sorted, alpha / 2.0),
        upper: percentile(sorted, 1.0 - alpha / 2.0),
        level,
    };
    (
        make(&ps, point.precision),
        make(&rs, point.recall),
        make(&fs, point.f_measure),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_kb::{Interner, Symbol};
    use midas_weburl::SourceUrl;

    fn gold(t: &mut Interner, url: &str, entities: &[&str]) -> GoldSlice {
        let mut es: Vec<Symbol> = entities.iter().map(|e| t.intern(e)).collect();
        es.sort_unstable();
        GoldSlice {
            source: SourceUrl::parse(url).unwrap(),
            properties: vec![],
            entities: es,
            description: "g".into(),
        }
    }

    fn slice(t: &mut Interner, url: &str, entities: &[&str]) -> DiscoveredSlice {
        let mut es: Vec<Symbol> = entities.iter().map(|e| t.intern(e)).collect();
        es.sort_unstable();
        DiscoveredSlice {
            source: SourceUrl::parse(url).unwrap(),
            properties: vec![],
            entities: es,
            num_facts: 1,
            num_new_facts: 1,
            profit: 1.0,
        }
    }

    #[test]
    fn perfect_match_has_degenerate_interval() {
        let mut t = Interner::new();
        let g = vec![gold(&mut t, "http://a.com/x", &["e"])];
        let s = vec![slice(&mut t, "http://a.com/x", &["e"])];
        let (p, r, f) = bootstrap_prf(&s, &g, 200, 0.95, 1);
        for ci in [p, r, f] {
            assert_eq!(ci.estimate, 1.0);
            assert_eq!(ci.lower, 1.0);
            assert_eq!(ci.upper, 1.0);
            assert!(ci.contains(1.0));
        }
    }

    #[test]
    fn mixed_results_have_nondegenerate_interval() {
        let mut t = Interner::new();
        let g = vec![
            gold(&mut t, "http://a.com/x", &["e1"]),
            gold(&mut t, "http://a.com/y", &["e2"]),
        ];
        let s = vec![
            slice(&mut t, "http://a.com/x", &["e1"]),
            slice(&mut t, "http://a.com/junk1", &["z1"]),
            slice(&mut t, "http://a.com/junk2", &["z2"]),
        ];
        let (p, _, f) = bootstrap_prf(&s, &g, 500, 0.95, 2);
        assert!((p.estimate - 1.0 / 3.0).abs() < 1e-12);
        assert!(p.lower < p.estimate && p.estimate < p.upper);
        assert!(p.contains(p.estimate));
        assert!(f.half_width() > 0.0);
    }

    #[test]
    fn bootstrap_is_deterministic_under_seed() {
        let mut t = Interner::new();
        let g = vec![gold(&mut t, "http://a.com/x", &["e1"])];
        let s = vec![
            slice(&mut t, "http://a.com/x", &["e1"]),
            slice(&mut t, "http://a.com/j", &["z"]),
        ];
        let a = bootstrap_prf(&s, &g, 100, 0.9, 7);
        let b = bootstrap_prf(&s, &g, 100, 0.9, 7);
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let (p, r, f) = bootstrap_prf(&[], &[], 50, 0.95, 3);
        assert_eq!(p.estimate, 0.0);
        assert_eq!(r.estimate, 0.0);
        assert_eq!(f.estimate, 0.0);
    }
}
