//! Aligned-text and CSV table emitters for the figure/table binaries.

use std::fmt::Write as _;

/// A simple column-aligned text table (also serialisable as CSV).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| (*c).to_owned()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad));
            }
            line.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders CSV (RFC-4180-style quoting for commas/quotes/newlines).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Builds a table of quarantined sources for a run report: one row per
/// [`midas_core::SourceFault`] with stage, cause tag, detail, and the budget
/// (facts) the source had consumed before it was dropped.
pub fn quarantine_table(quarantine: &midas_core::Quarantine) -> Table {
    let mut t = Table::new(
        "Quarantined sources",
        &["source", "stage", "cause", "detail", "facts_seen"],
    );
    for fault in quarantine.iter() {
        t.row(&[
            fault.source.clone(),
            fault.stage.to_string(),
            fault.cause.tag().to_owned(),
            fault.cause.to_string(),
            fault.facts_seen.to_string(),
        ]);
    }
    t
}

/// Formats a float with 2 decimals (the paper's table style).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage ("77%").
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_strs(&["a", "1"]).row_strs(&["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("a"));
        // Columns align: "value" and "1" start at the same offset.
        let header_off = lines[1].find("value").unwrap();
        let row_off = lines[3].find('1').unwrap();
        assert_eq!(header_off, row_off);
    }

    #[test]
    fn csv_quotes_special_chars() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["with,comma".to_owned(), "with \"quote\"".to_owned()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with \"\"quote\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_strs(&["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(0.7777), "0.778");
        assert_eq!(pct(0.77), "77%");
    }

    #[test]
    fn quarantine_table_lists_faults() {
        let mut q = midas_core::Quarantine::new();
        q.push(midas_core::SourceFault {
            source: "http://bad.example.org/page".to_owned(),
            stage: midas_core::Stage::Detect,
            cause: midas_core::FaultCause::Panic {
                message: "boom".to_owned(),
            },
            facts_seen: 3,
        });
        let t = quarantine_table(&q);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains("http://bad.example.org/page"));
        assert!(s.contains("panic"));
        assert!(s.contains("boom"));
    }

    #[test]
    fn unicode_width_alignment_is_char_based() {
        let mut t = Table::new("u", &["col"]);
        t.row_strs(&["∧∧∧"]).row_strs(&["abc"]);
        let s = t.render();
        assert!(s.contains("∧∧∧"));
    }
}
