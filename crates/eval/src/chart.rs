//! Terminal line charts for the figure binaries.
//!
//! The paper's evaluation is a set of *figures*; the harness regenerates
//! the underlying series as tables, and this module additionally renders
//! them as compact ASCII charts so the shapes (who wins, where the
//! crossovers fall) are visible at a glance in the terminal:
//!
//! ```text
//! F-measure vs coverage
//! 1.00 ┤ ●──●──●──●──●   midas
//!      │ ○──○──○─_○──○   greedy
//! 0.00 ┼──────────────
//! ```

use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, assumed sorted by `x`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from a label and points.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.to_owned(),
            points,
        }
    }
}

/// A fixed-size character canvas line chart.
#[derive(Debug)]
pub struct AsciiChart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
    /// Marker characters cycled per series.
    markers: Vec<char>,
    y_min: Option<f64>,
    y_max: Option<f64>,
}

impl AsciiChart {
    /// Creates an empty chart with a drawing area of `width`×`height` cells.
    pub fn new(title: &str, width: usize, height: usize) -> Self {
        AsciiChart {
            title: title.to_owned(),
            width: width.max(10),
            height: height.max(4),
            series: Vec::new(),
            markers: vec!['●', '○', '▲', '□', '◆', '◇'],
            y_min: None,
            y_max: None,
        }
    }

    /// Fixes the y-axis range (otherwise derived from the data).
    pub fn with_y_range(mut self, min: f64, max: f64) -> Self {
        self.y_min = Some(min);
        self.y_max = Some(max);
        self
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if all.is_empty() {
            let _ = writeln!(out, "  (no data)");
            return out;
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        let y_lo = self.y_min.unwrap_or(y_lo);
        let y_hi = self.y_max.unwrap_or(y_hi);
        let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
        let y_span = (y_hi - y_lo).max(f64::MIN_POSITIVE);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let marker = self.markers[si % self.markers.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let col = (((x - x_min) / x_span) * (self.width - 1) as f64).round() as usize;
                let y_clamped = y.clamp(y_lo, y_hi);
                let row_f = (1.0 - (y_clamped - y_lo) / y_span) * (self.height - 1) as f64;
                let row = row_f.round() as usize;
                let cell = &mut grid[row.min(self.height - 1)][col.min(self.width - 1)];
                // Later series overwrite blanks only; collisions show '+'.
                *cell = if *cell == ' ' || *cell == marker {
                    marker
                } else {
                    '+'
                };
            }
        }

        for (i, row) in grid.iter().enumerate() {
            let y_label = if i == 0 {
                format!("{y_hi:>8.2} ")
            } else if i == self.height - 1 {
                format!("{y_lo:>8.2} ")
            } else {
                " ".repeat(9)
            };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{y_label}┤{}", line.trim_end());
        }
        let _ = writeln!(
            out,
            "{}└{} x: {x_min:.2} … {x_max:.2}",
            " ".repeat(8),
            "─".repeat(self.width.min(12)),
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(
                out,
                "          {} {}",
                self.markers[si % self.markers.len()],
                s.label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_series_with_legend() {
        let chart = AsciiChart::new("F vs coverage", 30, 8)
            .with_y_range(0.0, 1.0)
            .series(Series::new(
                "midas",
                vec![(0.0, 1.0), (0.4, 1.0), (0.8, 0.9)],
            ))
            .series(Series::new(
                "naive",
                vec![(0.0, 0.2), (0.4, 0.15), (0.8, 0.05)],
            ));
        let s = chart.render();
        assert!(s.contains("F vs coverage"));
        assert!(s.contains("● midas"));
        assert!(s.contains("○ naive"));
        assert!(s.contains("1.00"));
        assert!(s.contains("0.00"));
    }

    #[test]
    fn top_row_holds_max_bottom_row_holds_min() {
        let chart =
            AsciiChart::new("t", 20, 5).series(Series::new("s", vec![(0.0, 0.0), (1.0, 1.0)]));
        let s = chart.render();
        let lines: Vec<&str> = s.lines().collect();
        // Line 1 is the top row (y max): it must contain the marker at the
        // right; the bottom row holds the left marker.
        assert!(lines[1].trim_end().ends_with('●'), "top-right point: {s}");
        assert!(lines[5].contains('●'), "bottom-left point: {s}");
    }

    #[test]
    fn empty_chart_is_graceful() {
        let s = AsciiChart::new("empty", 20, 5).render();
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn collisions_are_marked() {
        let chart = AsciiChart::new("c", 20, 5)
            .series(Series::new("a", vec![(0.5, 0.5)]))
            .series(Series::new("b", vec![(0.5, 0.5)]));
        let s = chart.render();
        assert!(s.contains('+'), "colliding markers shown as +: {s}");
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let chart =
            AsciiChart::new("n", 20, 5).series(Series::new("a", vec![(0.0, f64::NAN), (1.0, 0.5)]));
        let s = chart.render();
        assert!(s.contains('●'));
    }
}
