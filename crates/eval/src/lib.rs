//! # midas-eval — the §IV evaluation harness
//!
//! Everything needed to regenerate the paper's experiments:
//!
//! * [`metrics`] — precision / recall / F-measure against a gold-slice
//!   standard with the ≥ 0.95 Jaccard equivalence of §IV-B, plus top-k
//!   precision and PR-curve points.
//! * [`labeling`] — the simulated human annotator: R_new and R_anno over
//!   K = 20 sampled entities, a slice being "correct" when both exceed 0.5.
//! * [`silver`] — coverage-adjusted knowledge bases: load x% of the silver
//!   standard into the KB and evaluate against the remaining slices.
//! * [`runner`] — timed algorithm runs: the MIDAS framework, or any
//!   [`midas_core::SliceDetector`] applied per (domain-merged) source.
//! * [`report`] — aligned-text and CSV table emitters for the figure/table
//!   binaries in `midas-bench`.

#![warn(missing_docs)]

pub mod chart;
pub mod labeling;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod significance;
pub mod silver;

pub use chart::{AsciiChart, Series};
pub use labeling::SimulatedAnnotator;
pub use metrics::{match_to_gold, pr_curve, top_k_precision, Prf};
pub use report::{quarantine_table, Table};
pub use runner::{
    merge_by_domain, run_augmentation, run_detector_per_source, run_detector_per_source_budgeted,
    run_midas_framework, AugmentationRound, RunResult,
};
pub use significance::{bootstrap_prf, ConfidenceInterval};
pub use silver::coverage_adjusted;
