//! In-repo shim for the `criterion` API subset the workspace uses.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This implements `Criterion`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros with a simple median-of-samples timer instead
//! of criterion's full statistical machinery.
//!
//! Runner knobs (environment variables):
//! - `MIDAS_BENCH_SAMPLES=<n>` — override every benchmark's sample count
//!   (used by the `bench-smoke` runner for quick passes).
//! - `MIDAS_BENCH_JSON=<path>` — append one JSON line per benchmark:
//!   `{"bench":..., "median_ns":..., "mean_ns":..., "min_ns":...,
//!   "max_ns":..., "samples":..., "calib_ns":..., "peak_rss_kb":...}`
//!   (`peak_rss_kb` is the process-wide high-water mark so far — `VmHWM` on
//!   Linux, 0 elsewhere; `calib_ns` is the [`calib_ns`] machine-speed
//!   reference measured in the same process).
//!
//! Positional CLI arguments are treated as substring filters on benchmark
//! names; `-`/`--` flags passed by `cargo bench` are ignored.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub use std::hint::black_box;

static FILTERS: OnceLock<Vec<String>> = OnceLock::new();

/// Parses benchmark CLI args (called by `criterion_main!`). Positional
/// args become name filters; flags from `cargo bench` are ignored.
pub fn init_from_args() {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let _ = FILTERS.set(filters);
}

fn name_selected(name: &str) -> bool {
    match FILTERS.get() {
        Some(fs) if !fs.is_empty() => fs.iter().any(|f| name.contains(f.as_str())),
        _ => true,
    }
}

static METRICS_HOOK: OnceLock<fn() -> Option<String>> = OnceLock::new();

/// Registers a process-wide hook supplying an extra JSON value for each
/// `MIDAS_BENCH_JSON` line, appended as a `"metrics"` field. The hook
/// returns pre-serialised JSON (or `None` to omit the field), so the shim
/// stays dependency-free: bench binaries pass a closure over their own
/// metrics registry (e.g. `midas_core::telemetry::snapshot().to_json()`).
/// First registration wins; later calls are ignored.
pub fn set_metrics_hook(hook: fn() -> Option<String>) {
    let _ = METRICS_HOOK.set(hook);
}

fn sample_override() -> Option<usize> {
    std::env::var("MIDAS_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures for one benchmark; handed to the user's closure.
pub struct Bencher {
    samples: usize,
    durations_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall time.
    ///
    /// Calibrates a batch size so each sample lasts ≥ ~2 ms (single
    /// iteration for slow bodies), then records `samples` batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        const TARGET_SAMPLE_NS: f64 = 2_000_000.0;

        // Calibration: double the batch until it costs enough to time.
        let mut batch: u64 = 1;
        let mut per_iter_ns;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            per_iter_ns = elapsed / batch as f64;
            if elapsed >= TARGET_SAMPLE_NS / 4.0 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let iters = if per_iter_ns >= TARGET_SAMPLE_NS {
            1
        } else {
            (TARGET_SAMPLE_NS / per_iter_ns).round().max(1.0) as u64
        };

        self.durations_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.durations_ns.push(elapsed / iters as f64);
        }
    }
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`); 0 when unavailable (non-Linux platforms).
///
/// The kernel counter is process-wide and monotone, so per-bench values in a
/// shared process only bound memory from above; measure configurations in
/// separate processes to compare them.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Time per iteration of a fixed CPU-bound reference loop, in nanoseconds —
/// measured once per process and cached.
///
/// The loop (an integer LCG spin) does the same work on every machine, so
/// its per-iteration time is a pure measure of how fast this process is
/// being run *right now*: CPU model, frequency scaling, and noisy-neighbour
/// contention all move it. Dividing a benchmark's median by this reference
/// yields a dimensionless, machine-portable cost that comparison tooling
/// (`scripts/bench_compare.py`) uses so a slow CI host doesn't masquerade
/// as a code regression.
pub fn calib_ns() -> f64 {
    static CALIB: OnceLock<f64> = OnceLock::new();
    *CALIB.get_or_init(|| {
        const SPIN: u64 = 1 << 16;
        let mut best = f64::INFINITY;
        // Median would also do; min is the standard choice for a pure-CPU
        // reference (any deviation upward is interference, never the loop).
        for _ in 0..9 {
            let start = Instant::now();
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..SPIN {
                x = black_box(
                    x.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407),
                );
            }
            black_box(x);
            let per_iter = start.elapsed().as_nanos() as f64 / SPIN as f64;
            best = best.min(per_iter);
        }
        best.max(f64::MIN_POSITIVE)
    })
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if !name_selected(name) {
        return;
    }
    let samples = sample_override().unwrap_or(samples);
    let mut b = Bencher {
        samples,
        durations_ns: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.durations_ns.is_empty() {
        eprintln!("{name:<44} (no samples recorded)");
        return;
    }
    let mut sorted = b.durations_ns.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
    println!(
        "{name:<44} time: [{} {} {}]",
        human(min),
        human(median),
        human(max)
    );
    if let Ok(path) = std::env::var("MIDAS_BENCH_JSON") {
        if !path.is_empty() {
            let metrics_field = METRICS_HOOK
                .get()
                .and_then(|hook| hook())
                .map(|json| format!(",\"metrics\":{}", json.trim()))
                .unwrap_or_default();
            let line = format!(
                "{{\"bench\":{:?},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"calib_ns\":{:.4},\"peak_rss_kb\":{}{}}}\n",
                name, median, mean, min, max, sorted.len(), calib_ns(), peak_rss_kb(), metrics_field
            );
            let written = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut fh| fh.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!("warning: could not append to {path}: {e}");
            }
        }
    }
}

/// Top-level benchmark registry (one per `criterion_group!` function).
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 30,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.default_samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: 30,
        }
    }
}

/// A named set of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark named `{group}/{id}`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into());
        run_one(&name, self.samples, &mut f);
        self
    }

    /// Runs a parameterised benchmark named `{group}/{id}`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op in this shim).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            durations_ns: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(b.durations_ns.len(), 5);
        assert!(b.durations_ns.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(2500).id, "2500");
        assert_eq!(BenchmarkId::new("build", 7).id, "build/7");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        assert!(peak_rss_kb() > 0, "VmHWM should be readable");
    }

    #[test]
    fn calibration_is_positive_and_stable_within_a_process() {
        let a = calib_ns();
        let b = calib_ns();
        assert!(a > 0.0);
        assert_eq!(a, b, "calibration is measured once and cached");
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(2_000_000_000.0).ends_with('s'));
    }
}
