//! In-repo shim for the `proptest` API subset the workspace uses.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This provides the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `any`, integer-range / regex-pattern / tuple strategies,
//! `collection::vec`, `option::of`, and `ProptestConfig::with_cases`.
//!
//! Differences from crates.io proptest: no shrinking (a failing case
//! reports its generated inputs verbatim), no persistence of regression
//! seeds (`*.proptest-regressions` files are ignored), and the regex
//! strategy supports only the subset actually used by the test suites:
//! literals, `\`-escapes, `.`, `[...]` classes with ranges, `(...)`
//! groups with `|` alternation, and `{m}` / `{m,n}` / `?` / `*` / `+`
//! quantifiers. Case generation is deterministic per test name.

/// Deterministic test-case RNG and failure plumbing.
pub mod test_runner {
    use std::fmt;

    /// Per-test-case random source (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Deterministic RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n > 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform value in `[lo, hi]`.
        pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            lo + self.below(hi - lo + 1)
        }

        /// Bernoulli draw: true with probability `num/denom`.
        pub fn chance(&mut self, num: u64, denom: u64) -> bool {
            self.below(denom) < num
        }
    }

    /// Failure raised by `prop_assert!` / `prop_assert_eq!`.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of a single generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner knobs; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Extracts a human-readable message from a panic payload.
    pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
        if let Some(s) = payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s
        } else {
            "<non-string panic payload>"
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A reusable generator of values for one test argument.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<R: Debug, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Constant strategy: always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, R: Debug, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
        type Value = R;
        fn generate(&self, rng: &mut TestRng) -> R {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.inner.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    /// Types with a canonical default strategy (see [`crate::any`]).
    pub trait Arbitrary: Debug + Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
    impl_arbitrary_tuple!(A, B, C, D, E);

    /// Strategy produced by [`crate::any`].
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_strategy_tuple {
        ($($name:ident: $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_strategy_tuple!(A: 0);
    impl_strategy_tuple!(A: 0, B: 1);
    impl_strategy_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// `&'static str` regex-subset strategies (`"[a-z]{1,5}"` etc.).
mod pattern {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    enum Atom {
        Dot,
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Element>>),
    }

    struct Element {
        atom: Atom,
        min: u32,
        max: u32,
    }

    struct Parser<'a> {
        src: &'a str,
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }

    impl<'a> Parser<'a> {
        fn new(src: &'a str) -> Self {
            Parser {
                src,
                chars: src.chars().peekable(),
            }
        }

        fn err(&self, msg: &str) -> ! {
            panic!("unsupported pattern strategy {:?}: {msg}", self.src)
        }

        // Parses a `|`-separated alternation until `stop` (')' or end).
        fn alternation(&mut self, stop: Option<char>) -> Vec<Vec<Element>> {
            let mut branches = vec![Vec::new()];
            loop {
                match self.chars.peek().copied() {
                    None => {
                        if stop.is_some() {
                            self.err("unterminated group");
                        }
                        return branches;
                    }
                    Some(c) if Some(c) == stop => {
                        self.chars.next();
                        return branches;
                    }
                    Some('|') => {
                        self.chars.next();
                        branches.push(Vec::new());
                    }
                    Some(_) => {
                        let e = self.element();
                        branches.last_mut().unwrap().push(e);
                    }
                }
            }
        }

        fn element(&mut self) -> Element {
            let atom = match self.chars.next().unwrap() {
                '.' => Atom::Dot,
                '\\' => match self.chars.next() {
                    Some(c) => Atom::Lit(c),
                    None => self.err("dangling escape"),
                },
                '[' => Atom::Class(self.class()),
                '(' => Atom::Group(self.alternation(Some(')'))),
                c @ (')' | '|' | '?' | '*' | '+' | '{' | '}') => {
                    self.err(&format!("unexpected {c:?}"))
                }
                c => Atom::Lit(c),
            };
            let (min, max) = self.quantifier();
            Element { atom, min, max }
        }

        fn class(&mut self) -> Vec<(char, char)> {
            let mut ranges = Vec::new();
            loop {
                let c = match self.chars.next() {
                    Some(']') => return ranges,
                    Some('\\') => self
                        .chars
                        .next()
                        .unwrap_or_else(|| self.err("dangling escape in class")),
                    Some(c) => c,
                    None => self.err("unterminated class"),
                };
                // `c-d` is a range unless `-` is the final char before `]`.
                if self.chars.peek() == Some(&'-') {
                    let mut ahead = self.chars.clone();
                    ahead.next();
                    if ahead.peek() != Some(&']') {
                        self.chars.next();
                        let end = self
                            .chars
                            .next()
                            .unwrap_or_else(|| self.err("unterminated range"));
                        if end < c {
                            self.err("inverted class range");
                        }
                        ranges.push((c, end));
                        continue;
                    }
                }
                ranges.push((c, c));
            }
        }

        fn quantifier(&mut self) -> (u32, u32) {
            match self.chars.peek().copied() {
                Some('?') => {
                    self.chars.next();
                    (0, 1)
                }
                Some('*') => {
                    self.chars.next();
                    (0, 8)
                }
                Some('+') => {
                    self.chars.next();
                    (1, 8)
                }
                Some('{') => {
                    self.chars.next();
                    let mut min = String::new();
                    let mut max = String::new();
                    let mut in_max = false;
                    loop {
                        match self.chars.next() {
                            Some('}') => break,
                            Some(',') => in_max = true,
                            Some(d) if d.is_ascii_digit() => {
                                if in_max { &mut max } else { &mut min }.push(d)
                            }
                            _ => self.err("malformed {m,n} quantifier"),
                        }
                    }
                    let lo: u32 = min.parse().unwrap_or_else(|_| self.err("bad bound"));
                    let hi: u32 = if !in_max {
                        lo
                    } else if max.is_empty() {
                        lo + 8
                    } else {
                        max.parse().unwrap_or_else(|_| self.err("bad bound"))
                    };
                    if hi < lo {
                        self.err("inverted {m,n} quantifier");
                    }
                    (lo, hi)
                }
                _ => (1, 1),
            }
        }
    }

    // Mostly printable ASCII; occasionally multi-byte to exercise UTF-8
    // handling in interner/persistence round trips.
    const EXOTIC: &[char] = &['é', 'ß', '中', '☃', '🦀'];

    fn sample_seq(seq: &[Element], rng: &mut TestRng, out: &mut String) {
        for e in seq {
            let reps = rng.in_range(e.min as u64, e.max as u64);
            for _ in 0..reps {
                match &e.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Dot => {
                        if rng.chance(1, 16) {
                            out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
                        } else {
                            out.push((0x20 + rng.below(0x5F) as u8) as char);
                        }
                    }
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(a, b) in ranges {
                            let span = (b as u64) - (a as u64) + 1;
                            if pick < span {
                                out.push(
                                    char::from_u32(a as u32 + pick as u32)
                                        .expect("class range stays in scalar values"),
                                );
                                break;
                            }
                            pick -= span;
                        }
                    }
                    Atom::Group(branches) => {
                        let b = rng.below(branches.len() as u64) as usize;
                        sample_seq(&branches[b], rng, out);
                    }
                }
            }
        }
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut p = Parser::new(self);
            let branches = p.alternation(None);
            let mut out = String::new();
            let b = rng.below(branches.len() as u64) as usize;
            sample_seq(&branches[b], rng, &mut out);
            out
        }
    }
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Number-of-elements specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.in_range(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies (subset: `of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Option`s of `inner`-generated values.
    pub struct OptionStrategy<S>(S);

    /// `Some` with probability 3/4, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.chance(1, 4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Canonical strategy for `T` (`any::<(u8, u8, u8)>()` etc.).
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Everything the test suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Fails the current case unless `cond` holds; optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(
                        move || -> $crate::test_runner::TestCaseResult {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => panic!(
                        "proptest case {case} failed: {err}\n  inputs: {inputs}"
                    ),
                    Err(payload) => panic!(
                        "proptest case {case} panicked: {}\n  inputs: {inputs}",
                        $crate::test_runner::panic_message(payload.as_ref())
                    ),
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strategies_match_their_shapes() {
        let mut rng = TestRng::for_case("pattern_shapes", 0);
        for case in 0..500u32 {
            let mut rng2 = TestRng::for_case("pattern_shapes", case);
            let s = Strategy::generate(&"[a-z]{1,5}", &mut rng2);
            assert!((1..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let host = Strategy::generate(&"[a-z]{1,8}(\\.[a-z]{2,3})?", &mut rng);
            let parts: Vec<&str> = host.split('.').collect();
            assert!(parts.len() <= 2, "{host:?}");
            assert!((1..=8).contains(&parts[0].len()), "{host:?}");
            if parts.len() == 2 {
                assert!((2..=3).contains(&parts[1].len()), "{host:?}");
            }

            let free = Strategy::generate(&".{0,24}", &mut rng);
            assert!(free.chars().count() <= 24);

            let printable = Strategy::generate(&"[ -~]{1,12}", &mut rng);
            assert!((1..=12).contains(&printable.len()));
            assert!(printable.bytes().all(|b| (0x20..=0x7E).contains(&b)));

            let ident = Strategy::generate(&"[a-z0-9_-]{1,6}", &mut rng);
            assert!(ident
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn vec_and_option_strategies_respect_bounds() {
        let mut rng = TestRng::for_case("vec_bounds", 0);
        let vs = crate::collection::vec(0u8..3, 0..60);
        let fixed = crate::collection::vec(crate::option::of(0u8..3), 4);
        let mut saw_none = false;
        for _ in 0..300 {
            let v = Strategy::generate(&vs, &mut rng);
            assert!(v.len() < 60);
            assert!(v.iter().all(|&x| x < 3));
            let f = Strategy::generate(&fixed, &mut rng);
            assert_eq!(f.len(), 4);
            saw_none |= f.iter().any(|o| o.is_none());
        }
        assert!(saw_none, "option::of never produced None in 300 draws");
    }

    #[test]
    fn any_tuples_and_ranges_generate() {
        let mut rng = TestRng::for_case("any_tuples", 0);
        let t = Strategy::generate(&any::<(u8, u8, u8, bool)>(), &mut rng);
        let _: (u8, u8, u8, bool) = t;
        let q = Strategy::generate(&(0u8..8), &mut rng);
        assert!(q < 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, trailing comma, doc attr.
        fn macro_end_to_end(
            xs in crate::collection::vec(any::<(u8, u8)>(), 0..20),
            k in 0u8..5,
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(k as usize + xs.len(), xs.len() + k as usize);
            for (a, _b) in &xs {
                prop_assert!(*a as u32 <= 255, "a = {}", a);
            }
        }
    }
}
