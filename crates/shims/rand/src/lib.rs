//! In-repo shim for the `rand` API subset the workspace uses.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This implements `StdRng` as a splitmix64-seeded xoshiro256++ generator
//! with the `Rng`/`SeedableRng`/`SliceRandom` surface midas calls. The
//! streams are *not* bit-compatible with crates.io `rand` — they are,
//! however, fully deterministic for a given seed, which is the property the
//! corpus generators and benchmark harness actually rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible uniformly at random via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                debug_assert!(span > 0);
                // Multiply-shift bounded draw (Lemire); span ≤ 2^64 here.
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform draw from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as SampleUniform>::sample_range(rng, lo, hi);
                }
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64. Deterministic per seed; not crates.io-stream-compatible.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Iterator over elements sampled by [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T>(std::vec::IntoIter<&'a T>);

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.0.next()
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    /// Random operations on slices (subset: `shuffle`, `choose`,
    /// `choose_multiple`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Up to `amount` distinct elements sampled without replacement,
        /// in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let picked: Vec<&T> = idx[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter(picked.into_iter())
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = rng.gen_range(0..3);
            assert!(y < 3);
            let z: usize = rng.gen_range(1..=4);
            assert!((1..=4).contains(&z));
            let f: f64 = rng.gen_range(0.0..0.9);
            assert!((0.0..0.9).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
