//! In-repo shim for the `bytes` API subset the workspace uses.
//!
//! The build environment is offline; midas only needs cursor-style reads
//! over `&[u8]` ([`Buf`]) and an appendable byte buffer ([`BytesMut`] +
//! [`BufMut`]), so this implements exactly that over `Vec<u8>`/slices.

use std::ops::{Deref, DerefMut};

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u32`, consuming 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, consuming 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

/// Append-style writer over a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A growable, appendable byte buffer (the `bytes::BytesMut` subset).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with `n` bytes of capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut(Vec::with_capacity(n))
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consumes the buffer into its backing `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"MKB1");
        b.put_u32_le(7);
        b.put_u64_le(u64::MAX - 1);
        b.put_u8(0xAB);

        let mut r: &[u8] = &b;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MKB1");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_u8(), 0xAB);
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_consumes() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.chunk(), &[3, 4]);
    }
}
