//! In-repo shim for the `crossbeam` API subset the workspace uses.
//!
//! The build environment is fully offline (no registry access), so the real
//! crate cannot be fetched. This shim implements the two things midas needs
//! — MPMC channels and scoped threads — on top of `std` primitives with the
//! same call signatures, so the workspace code is source-compatible with the
//! real crossbeam should it ever become available again.

/// Multi-producer multi-consumer FIFO channels (subset of
/// `crossbeam-channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned when sending on a channel with no receivers left.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug/Display without requiring `T: Debug`, so
    // `.send(v).expect(...)` compiles for arbitrary payload types.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when receiving on an empty channel with no senders.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`], mirroring
    /// `crossbeam_channel::RecvTimeoutError`.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty (senders remain).
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => {
                    write!(f, "timed out waiting on an empty channel")
                }
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`], mirroring crossbeam's
    /// distinction between a momentarily empty channel and one that can
    /// never yield again.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is empty but senders remain; a later call may succeed.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::Relaxed);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers. Taking the
                // queue lock first serializes this drop against recv's
                // check-then-wait — without it, a receiver that has loaded
                // `senders > 0` but not yet parked would miss the wakeup and
                // block forever.
                drop(self.0.queue.lock().unwrap_or_else(|e| e.into_inner()));
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks (the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks until a value is available, every sender is dropped, or
        /// `timeout` elapses — whichever comes first.
        ///
        /// The deadline is computed once on entry, so spurious condvar
        /// wakeups cannot extend the wait. Mirrors crossbeam's contract:
        /// `Disconnected` wins over `Timeout` when both hold.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                q = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        /// Returns a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(inner.clone()), Receiver(inner))
    }
}

/// Scoped threads (subset of `crossbeam-utils`'s `thread` module), delegating
/// to `std::thread::scope`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to [`scope`]'s closure; spawns borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. The
        /// closure receives the scope again (crossbeam's nested-spawn API);
        /// midas ignores it.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before `scope` returns. Returns `Err` if any
    /// unjoined thread panicked (mirroring crossbeam's contract).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trip_mpmc() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.recv().is_err(), "disconnected after all senders drop");
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        use super::channel::TryRecvError;
        let (tx, rx) = super::channel::unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    // Regression test for a lost-wakeup race: the last Sender::drop must
    // serialize against recv's check-then-wait via the queue mutex, or a
    // receiver that saw `senders > 0` but had not yet parked would block
    // forever. Loops to give the interleaving many chances to bite.
    #[test]
    fn last_sender_drop_wakes_blocked_receivers() {
        for _ in 0..200 {
            let (tx, rx) = super::channel::unbounded::<u32>();
            let receivers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut n = 0u32;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            let sender = std::thread::spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            sender.join().unwrap();
            let got: u32 = receivers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(got, 2);
        }
    }

    #[test]
    fn recv_timeout_returns_value_timeout_or_disconnect() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(9));
        // Empty with a live sender: times out.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        // Disconnected wins over the timeout once all senders are gone.
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(60)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        use std::time::Duration;
        let (tx, rx) = super::channel::unbounded::<u32>();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(5).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(30)), Ok(5));
        sender.join().unwrap();
    }

    // Same lost-wakeup shape as `last_sender_drop_wakes_blocked_receivers`,
    // but through the recv_timeout wait path: a receiver that loaded
    // `senders > 0` and then parked in `wait_timeout` must still be woken by
    // the last Sender::drop instead of stalling for the full timeout. The
    // generous timeout makes a lost wakeup show up as a test-suite hang
    // rather than a silent pass. Loops to give the interleaving many chances
    // to bite.
    #[test]
    fn last_sender_drop_wakes_timeout_receivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        for _ in 0..200 {
            let (tx, rx) = super::channel::unbounded::<u32>();
            let receivers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut n = 0u32;
                        loop {
                            match rx.recv_timeout(Duration::from_secs(60)) {
                                Ok(_) => n += 1,
                                Err(RecvTimeoutError::Disconnected) => return n,
                                Err(RecvTimeoutError::Timeout) => {
                                    panic!("lost wakeup: timed out with senders gone")
                                }
                            }
                        }
                    })
                })
                .collect();
            let sender = std::thread::spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            sender.join().unwrap();
            let got: u32 = receivers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(got, 2);
        }
    }

    #[test]
    fn scope_joins_and_collects() {
        let data = vec![1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
