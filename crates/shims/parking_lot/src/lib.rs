//! In-repo shim for the `parking_lot` API subset the workspace uses.
//!
//! The build environment is offline; this wraps `std::sync` locks with
//! parking_lot's non-poisoning signatures (`read()`/`write()`/`lock()`
//! return guards directly, recovering from poisoning transparently).

use std::fmt;
use std::sync::{self, LockResult};

fn recover<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
