//! String interning.
//!
//! Every RDF term (subject, predicate, object) and every URL that flows
//! through the system is interned exactly once into a [`Symbol`] — a compact
//! `u32` handle. Slices, fact tables, and indexes then operate on `Copy`
//! integers instead of heap strings, which is what makes the slice-hierarchy
//! construction of MIDASalg cheap enough to run over millions of facts.

use crate::fnv::FnvHashMap;
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// A compact handle to an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; comparing symbols from different interners is a logic error (but not
/// memory-unsafe). Symbols order by insertion index, *not* lexicographically.
/// The `repr(transparent)` layout is load-bearing: snapshot columns
/// reinterpret `[u32]` bytes as `[Symbol]` zero-copy (see `crate::column`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index.
    ///
    /// Only indices previously returned by [`Symbol::index`] for the same
    /// interner are valid; resolving a fabricated symbol panics.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("interner overflow: more than u32::MAX symbols"))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An append-only string interner.
///
/// Interning requires `&mut self`; resolving is `&self` and returns a
/// borrowed `&str`. For cross-thread use wrap it in a [`SharedInterner`].
///
/// The lookup table maps the 64-bit FNV-1a hash of a string to its symbol
/// instead of keying on an owned copy of the string. Each distinct term is
/// therefore heap-allocated exactly once (in `strings`), which matters on
/// the snapshot warm path where a six-figure term table is re-interned in
/// one burst. Distinct strings that collide on the full 64-bit hash are
/// parked in `overflow` and found by linear scan — with FNV-1a over short
/// terms that list stays empty in practice, but correctness never depends
/// on that.
///
/// The lookup table is also *lazy*: [`Interner::from_dump`] installs a
/// pre-deduplicated string table without indexing it, and the map is
/// synced on the first subsequent [`Interner::intern`]. A snapshot warm
/// run that only ever *resolves* symbols (discovery, reporting) never pays
/// for hashing and inserting hundreds of thousands of terms it will not
/// look up; runs that do intern afterwards (gold labels in eval) pay once,
/// on first use.
#[derive(Debug, Default)]
pub struct Interner {
    map: FnvHashMap<u64, Symbol>,
    overflow: Vec<Symbol>,
    strings: Vec<Box<str>>,
    /// How many of `strings` are indexed in `map`/`overflow`.
    synced: usize,
}

fn hash_str(s: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fnv::FnvHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        Interner {
            map: FnvHashMap::with_capacity_and_hasher(n, Default::default()),
            overflow: Vec::new(),
            strings: Vec::with_capacity(n),
            synced: 0,
        }
    }

    /// Adopts a dump of distinct strings, assigning symbol `i` to the
    /// `i`-th string — the inverse of [`Interner::iter`]. The lookup map is
    /// *not* built here; it is synced lazily by the first `intern` call.
    ///
    /// The caller asserts the strings are distinct (snapshot dumps are, by
    /// construction: they are written from an interner). Duplicates are
    /// caught by a `debug_assert` when the map eventually syncs; in release
    /// builds a duplicate would resolve correctly but re-intern to the
    /// first occurrence.
    pub fn from_dump(strings: Vec<Box<str>>) -> Self {
        Interner {
            map: FnvHashMap::default(),
            overflow: Vec::new(),
            strings,
            synced: 0,
        }
    }

    /// Indexes any strings appended since the last sync (no-op when the
    /// map is current).
    fn sync(&mut self) {
        if self.synced == self.strings.len() {
            return;
        }
        self.map.reserve(self.strings.len() - self.synced);
        for i in self.synced..self.strings.len() {
            let sym = Symbol::from_index(i);
            let h = hash_str(&self.strings[i]);
            match self.map.entry(h) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    debug_assert_ne!(
                        &*self.strings[e.get().index()],
                        &*self.strings[i],
                        "duplicate string in interner dump at index {i}"
                    );
                    self.overflow.push(sym);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(sym);
                }
            }
        }
        self.synced = self.strings.len();
    }

    /// Interns `s`, returning its (stable) symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.sync();
        let h = hash_str(s);
        match self.map.entry(h) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = *e.get();
                if &*self.strings[first.index()] == s {
                    return first;
                }
                if let Some(sym) = self.find_in_overflow(s) {
                    return sym;
                }
                let sym = Symbol::from_index(self.strings.len());
                self.strings.push(s.into());
                self.overflow.push(sym);
                self.synced = self.strings.len();
                sym
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let sym = Symbol::from_index(self.strings.len());
                self.strings.push(s.into());
                e.insert(sym);
                self.synced = self.strings.len();
                sym
            }
        }
    }

    fn find_in_overflow(&self, s: &str) -> Option<Symbol> {
        self.overflow
            .iter()
            .copied()
            .find(|sym| &*self.strings[sym.index()] == s)
    }

    /// Returns the symbol for `s` if it was interned before.
    ///
    /// Works on an unsynced interner too: the indexed prefix is consulted
    /// through the map, the (normally empty) unsynced tail by linear scan.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        let mapped = self
            .map
            .get(&hash_str(s))
            .copied()
            .filter(|sym| &*self.strings[sym.index()] == s)
            .or_else(|| self.find_in_overflow(s));
        mapped.or_else(|| {
            self.strings[self.synced..]
                .iter()
                .position(|t| &**t == s)
                .map(|i| Symbol::from_index(self.synced + i))
        })
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(Symbol, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol::from_index(i), s.as_ref()))
    }
}

/// A clonable, thread-safe interner handle.
///
/// The multi-source framework shards work across threads; all shards intern
/// into the same table so that symbols remain comparable across sources.
#[derive(Debug, Clone, Default)]
pub struct SharedInterner(Arc<RwLock<Interner>>);

impl SharedInterner {
    /// Creates an empty shared interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing interner.
    pub fn from_interner(inner: Interner) -> Self {
        SharedInterner(Arc::new(RwLock::new(inner)))
    }

    /// Interns `s` (takes a read lock first for the common already-interned
    /// case, upgrading to a write lock only on a miss).
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(sym) = self.0.read().get(s) {
            return sym;
        }
        self.0.write().intern(s)
    }

    /// Returns the symbol for `s` if present.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.0.read().get(s)
    }

    /// Resolves `sym` to an owned string.
    pub fn resolve(&self, sym: Symbol) -> String {
        self.0.read().resolve(sym).to_owned()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.0.read().len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.0.read().is_empty()
    }

    /// Runs `f` with a shared reference to the underlying interner.
    pub fn with<R>(&self, f: impl FnOnce(&Interner) -> R) -> R {
        f(&self.0.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("NASA");
        let b = i.intern("NASA");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let words = ["rocket_family", "space_program", "", "ünïcodé ✓"];
        let syms: Vec<Symbol> = words.iter().map(|w| i.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(i.resolve(*s), *w);
        }
    }

    #[test]
    fn symbols_are_dense_and_ordered_by_insertion() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let c = i.intern("c");
        let b = i.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        assert_eq!(b.index(), 2);
        assert!(a < c && c < b, "symbol order is insertion order");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut i = Interner::new();
        i.intern("one");
        i.intern("two");
        let collected: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["one", "two"]);
    }

    #[test]
    fn shared_interner_is_consistent_across_clones() {
        let shared = SharedInterner::new();
        let s1 = shared.intern("golf");
        let clone = shared.clone();
        let s2 = clone.intern("golf");
        assert_eq!(s1, s2);
        assert_eq!(shared.resolve(s1), "golf");
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn shared_interner_concurrent_interning_agrees() {
        let shared = SharedInterner::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let sh = shared.clone();
                std::thread::spawn(move || {
                    (0..100)
                        .map(|k| sh.intern(&format!("key-{}", (k + t) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.len(), 50);
    }
}
