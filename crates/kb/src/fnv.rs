//! A minimal FNV-1a hasher.
//!
//! The interner and the hot per-source maps hash short strings and small
//! integers; FNV-1a beats the DoS-resistant default SipHash for those keys
//! while remaining dependency-free and fully deterministic across runs
//! (determinism matters: the benchmark harness must regenerate identical
//! corpora from identical seeds).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a streaming hasher state.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;
/// A `HashMap` keyed with FNV-1a.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;
/// A `HashSet` keyed with FNV-1a.
pub type FnvHashSet<T> = HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FnvHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of("margarita"), hash_of("margarita"));
        assert_eq!(hash_of(42u64), hash_of(42u64));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of("a"), hash_of("b"));
        assert_ne!(hash_of(1u32), hash_of(2u32));
        assert_ne!(hash_of(""), hash_of("\0"));
    }

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis.
        let h = FnvHasher::default();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FnvHashMap<&str, u32> = FnvHashMap::default();
        m.insert("x", 1);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FnvHashSet<u32> = FnvHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
