//! The knowledge base.
//!
//! [`KnowledgeBase`] is the "existing knowledge base `E`" of the paper's
//! problem definition (Definition 8). MIDAS only ever asks it membership
//! questions (`is this extracted fact new?`) and loads facts into it, so the
//! store is a thin, well-indexed wrapper over [`TripleIndex`].

use crate::fact::Fact;
use crate::index::TripleIndex;
use crate::interner::Symbol;
use crate::stats::DatasetStats;

/// A set of RDF facts with permutation indexes.
#[derive(Debug, Default, Clone)]
pub struct KnowledgeBase {
    index: TripleIndex,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base (the "creation" scenario of the
    /// paper, used for the ReVerb/NELL experiments).
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, f: Fact) -> bool {
        self.index.insert(f)
    }

    /// Bulk-inserts facts; returns how many were new.
    pub fn extend(&mut self, facts: impl IntoIterator<Item = Fact>) -> usize {
        facts.into_iter().filter(|&f| self.index.insert(f)).count()
    }

    /// Removes a fact; returns `true` if it was present.
    pub fn remove(&mut self, f: &Fact) -> bool {
        self.index.remove(f)
    }

    /// Whether the knowledge base already contains `f`.
    #[inline]
    pub fn contains(&self, f: &Fact) -> bool {
        self.index.contains(f)
    }

    /// Whether `f` is *new* with respect to this knowledge base — the
    /// predicate at the heart of the gain function `G(S) = |∪S \ E|`.
    #[inline]
    pub fn is_new(&self, f: &Fact) -> bool {
        !self.index.contains(f)
    }

    /// Counts how many of `facts` are absent from the knowledge base.
    pub fn count_new<'a>(&self, facts: impl IntoIterator<Item = &'a Fact>) -> usize {
        facts.into_iter().filter(|f| self.is_new(f)).count()
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the knowledge base holds no facts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Iterates all facts in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.index.iter()
    }

    /// All facts about entity `s`.
    pub fn facts_for_subject(&self, s: Symbol) -> impl Iterator<Item = Fact> + '_ {
        self.index.facts_for_subject(s)
    }

    /// Read access to the underlying permutation indexes.
    pub fn index(&self) -> &TripleIndex {
        &self.index
    }

    /// Distinct predicates stored.
    pub fn predicates(&self) -> Vec<Symbol> {
        self.index.predicates()
    }

    /// Distinct subjects stored.
    pub fn subjects(&self) -> Vec<Symbol> {
        self.index.subjects()
    }

    /// Dataset-level statistics of the stored facts (no URL information at
    /// this layer; see `midas_extract::Corpus::stats` for the Figure 7 rows).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            num_facts: self.len(),
            num_predicates: self.index.predicates().len(),
            num_subjects: self.index.subjects().len(),
            num_urls: 0,
        }
    }
}

impl FromIterator<Fact> for KnowledgeBase {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        let mut kb = KnowledgeBase::new();
        kb.extend(iter);
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn new_fact_detection_drives_gain() {
        let mut t = Interner::new();
        let known = Fact::intern(&mut t, "mercury", "sponsor", "NASA");
        let unknown = Fact::intern(&mut t, "atlas", "sponsor", "NASA");
        let kb: KnowledgeBase = [known].into_iter().collect();
        assert!(!kb.is_new(&known));
        assert!(kb.is_new(&unknown));
        assert_eq!(kb.count_new([&known, &unknown]), 1);
    }

    #[test]
    fn extend_reports_only_fresh_inserts() {
        let mut t = Interner::new();
        let a = Fact::intern(&mut t, "a", "p", "1");
        let b = Fact::intern(&mut t, "b", "p", "2");
        let mut kb = KnowledgeBase::new();
        assert_eq!(kb.extend([a, b, a]), 2);
        assert_eq!(kb.len(), 2);
        assert_eq!(kb.extend([a]), 0);
    }

    #[test]
    fn empty_kb_treats_everything_as_new() {
        let mut t = Interner::new();
        let f = Fact::intern(&mut t, "x", "y", "z");
        let kb = KnowledgeBase::new();
        assert!(kb.is_empty());
        assert!(kb.is_new(&f));
    }

    #[test]
    fn remove_round_trips() {
        let mut t = Interner::new();
        let f = Fact::intern(&mut t, "x", "y", "z");
        let mut kb = KnowledgeBase::new();
        kb.insert(f);
        assert!(kb.remove(&f));
        assert!(kb.is_new(&f));
        assert!(!kb.remove(&f));
    }

    #[test]
    fn stats_reflect_contents() {
        let mut t = Interner::new();
        let kb: KnowledgeBase = [
            Fact::intern(&mut t, "a", "p", "1"),
            Fact::intern(&mut t, "a", "q", "2"),
            Fact::intern(&mut t, "b", "p", "1"),
        ]
        .into_iter()
        .collect();
        let s = kb.stats();
        assert_eq!(s.num_facts, 3);
        assert_eq!(s.num_predicates, 2);
        assert_eq!(s.num_subjects, 2);
    }
}
