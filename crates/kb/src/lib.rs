//! # midas-kb — a dictionary-encoded triple store
//!
//! This crate is the knowledge-base substrate used by the MIDAS
//! reproduction (Wang, Dong, Li, Meliou — ICDE 2019). The paper augments an
//! existing knowledge base (Freebase in the original evaluation) with facts
//! extracted from the Web; all MIDAS needs from that knowledge base is:
//!
//! * fast membership tests (`is this (s, p, o) fact already known?`),
//! * bulk loading of facts,
//! * enumeration of subjects / predicates / objects, and
//! * dataset-level statistics (Figure 7 of the paper).
//!
//! Facts are RDF-style triples `(subject, predicate, object)`. All terms are
//! interned into compact [`Symbol`]s so that triples are `Copy` and hash/
//! compare in a few cycles; the store keeps three permutation indexes
//! (SPO / POS / OSP) so that every single-term or two-term lookup is a
//! `BTreeSet` range scan.
//!
//! ```
//! use midas_kb::{Interner, Fact, KnowledgeBase};
//!
//! let mut terms = Interner::new();
//! let f = Fact::new(
//!     terms.intern("Project Mercury"),
//!     terms.intern("sponsor"),
//!     terms.intern("NASA"),
//! );
//! let mut kb = KnowledgeBase::new();
//! kb.insert(f);
//! assert!(kb.contains(&f));
//! assert_eq!(kb.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod crashpoint;
pub mod error;
pub mod fact;
pub mod fnv;
pub mod index;
pub mod interner;
pub mod io;
pub mod mmap;
pub mod ontology;
pub mod persist;
pub mod query;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use column::{Column, Pod};
pub use error::KbError;
pub use fact::Fact;
pub use index::TripleIndex;
pub use interner::{Interner, SharedInterner, Symbol};
pub use mmap::Mmap;
pub use ontology::{CategoryId, Ontology, PredicateId};
pub use query::{Condition, ConjunctiveQuery};
pub use snapshot::{
    write_bytes_atomic, SectionReader, SectionWriter, Snapshot, SnapshotBuilder, SnapshotError,
    SNAPSHOT_VERSION, WRITE_CRASH_STAGES,
};
pub use stats::DatasetStats;
pub use store::KnowledgeBase;
