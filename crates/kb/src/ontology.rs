//! A small ClosedIE ontology.
//!
//! The NELL corpus used in the paper's evaluation is a *ClosedIE* system:
//! entities and predicates follow a fixed ontology (e.g.
//! `concept/athlete/MichaelPhelps generalizations concept/athlete`). The
//! NELL-like corpus generator needs such an ontology to draw typed entities
//! and predicates from, so this module provides a minimal type hierarchy
//! with typed predicates.

use crate::fnv::FnvHashMap;

/// Handle to a category (type) in the ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CategoryId(u32);

/// Handle to a typed predicate in the ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredicateId(u32);

#[derive(Debug, Clone)]
struct Category {
    name: String,
    parent: Option<CategoryId>,
    children: Vec<CategoryId>,
}

#[derive(Debug, Clone)]
struct TypedPredicate {
    name: String,
    domain: CategoryId,
}

/// A type hierarchy with typed predicates, NELL-style.
#[derive(Debug, Default, Clone)]
pub struct Ontology {
    categories: Vec<Category>,
    predicates: Vec<TypedPredicate>,
    by_name: FnvHashMap<String, CategoryId>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a category under `parent` (or as a root when `None`).
    ///
    /// Returns the existing id if a category with this name already exists.
    pub fn add_category(&mut self, name: &str, parent: Option<CategoryId>) -> CategoryId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = CategoryId(u32::try_from(self.categories.len()).expect("ontology overflow"));
        self.categories.push(Category {
            name: name.to_owned(),
            parent,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.categories[p.0 as usize].children.push(id);
        }
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Adds a predicate whose subject domain is `domain`.
    pub fn add_predicate(&mut self, name: &str, domain: CategoryId) -> PredicateId {
        let id = PredicateId(u32::try_from(self.predicates.len()).expect("ontology overflow"));
        self.predicates.push(TypedPredicate {
            name: name.to_owned(),
            domain,
        });
        id
    }

    /// Category name.
    pub fn category_name(&self, id: CategoryId) -> &str {
        &self.categories[id.0 as usize].name
    }

    /// Predicate name.
    pub fn predicate_name(&self, id: PredicateId) -> &str {
        &self.predicates[id.0 as usize].name
    }

    /// Subject domain of a predicate.
    pub fn predicate_domain(&self, id: PredicateId) -> CategoryId {
        self.predicates[id.0 as usize].domain
    }

    /// Looks a category up by name.
    pub fn category_by_name(&self, name: &str) -> Option<CategoryId> {
        self.by_name.get(name).copied()
    }

    /// Direct children of a category.
    pub fn children(&self, id: CategoryId) -> &[CategoryId] {
        &self.categories[id.0 as usize].children
    }

    /// Parent of a category, if any.
    pub fn parent(&self, id: CategoryId) -> Option<CategoryId> {
        self.categories[id.0 as usize].parent
    }

    /// Whether `sub` is `sup` or one of its (transitive) descendants.
    pub fn is_a(&self, sub: CategoryId, sup: CategoryId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// All categories in insertion order.
    pub fn categories(&self) -> impl Iterator<Item = CategoryId> + '_ {
        (0..self.categories.len()).map(|i| CategoryId(i as u32))
    }

    /// All predicates in insertion order.
    pub fn predicates(&self) -> impl Iterator<Item = PredicateId> + '_ {
        (0..self.predicates.len()).map(|i| PredicateId(i as u32))
    }

    /// Predicates applicable to entities of `cat` — predicates whose domain
    /// is `cat` or one of its ancestors.
    pub fn predicates_for(&self, cat: CategoryId) -> Vec<PredicateId> {
        self.predicates()
            .filter(|&p| self.is_a(cat, self.predicate_domain(p)))
            .collect()
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// Number of predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// NELL-style qualified entity name: `concept/<category>/<local>`.
    pub fn qualified_entity(&self, cat: CategoryId, local: &str) -> String {
        format!("concept/{}/{}", self.category_name(cat), local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sports_ontology() -> (Ontology, CategoryId, CategoryId, CategoryId) {
        let mut o = Ontology::new();
        let root = o.add_category("everything", None);
        let person = o.add_category("person", Some(root));
        let athlete = o.add_category("athlete", Some(person));
        (o, root, person, athlete)
    }

    #[test]
    fn is_a_walks_the_hierarchy() {
        let (o, root, person, athlete) = sports_ontology();
        assert!(o.is_a(athlete, person));
        assert!(o.is_a(athlete, root));
        assert!(o.is_a(person, person));
        assert!(!o.is_a(person, athlete));
    }

    #[test]
    fn add_category_is_idempotent_by_name() {
        let (mut o, root, ..) = sports_ontology();
        let again = o.add_category("person", Some(root));
        assert_eq!(Some(again), o.category_by_name("person"));
        assert_eq!(o.num_categories(), 3);
    }

    #[test]
    fn predicates_for_respects_domains() {
        let (mut o, root, person, athlete) = sports_ontology();
        let p_name = o.add_predicate("name", root);
        let p_team = o.add_predicate("plays_for", athlete);
        let p_born = o.add_predicate("born_in", person);
        let for_athlete = o.predicates_for(athlete);
        assert!(for_athlete.contains(&p_name));
        assert!(for_athlete.contains(&p_team));
        assert!(for_athlete.contains(&p_born));
        let for_person = o.predicates_for(person);
        assert!(!for_person.contains(&p_team));
        assert_eq!(for_person.len(), 2);
    }

    #[test]
    fn qualified_entity_formats_like_nell() {
        let (o, _, _, athlete) = sports_ontology();
        assert_eq!(
            o.qualified_entity(athlete, "MichaelPhelps"),
            "concept/athlete/MichaelPhelps"
        );
    }

    #[test]
    fn children_lists_direct_descendants_only() {
        let (o, root, person, athlete) = sports_ontology();
        assert_eq!(o.children(root), &[person]);
        assert_eq!(o.children(person), &[athlete]);
        assert!(o.children(athlete).is_empty());
    }
}
