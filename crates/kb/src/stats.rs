//! Dataset statistics (the rows of Figure 7 in the paper).

use crate::fact::Fact;
use crate::fnv::FnvHashSet;
use crate::interner::Symbol;
use std::fmt;

/// Counts describing a fact dataset, as tabulated in Figure 7.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// Total number of distinct facts.
    pub num_facts: usize,
    /// Number of distinct predicates.
    pub num_predicates: usize,
    /// Number of distinct subjects (entities).
    pub num_subjects: usize,
    /// Number of distinct source URLs (0 when no URL info is attached).
    pub num_urls: usize,
}

impl DatasetStats {
    /// Computes statistics over `(fact, url)` pairs, deduplicating facts.
    pub fn compute<'a>(items: impl IntoIterator<Item = (Fact, &'a str)>) -> Self {
        let mut facts: FnvHashSet<Fact> = FnvHashSet::default();
        let mut preds: FnvHashSet<Symbol> = FnvHashSet::default();
        let mut subjects: FnvHashSet<Symbol> = FnvHashSet::default();
        let mut urls: FnvHashSet<&str> = FnvHashSet::default();
        for (f, url) in items {
            facts.insert(f);
            preds.insert(f.predicate);
            subjects.insert(f.subject);
            urls.insert(url);
        }
        DatasetStats {
            num_facts: facts.len(),
            num_predicates: preds.len(),
            num_subjects: subjects.len(),
            num_urls: urls.len(),
        }
    }
}

/// Renders a count the way the paper does: `15M`, `327K`, `859K`, `100`.
pub fn humanize(n: usize) -> String {
    if n >= 1_000_000 {
        let m = n as f64 / 1_000_000.0;
        if m >= 10.0 {
            format!("{:.0}M", m)
        } else {
            format!("{:.1}M", m)
        }
    } else if n >= 1_000 {
        format!("{:.0}K", n as f64 / 1_000.0)
    } else {
        n.to_string()
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} facts, {} predicates, {} subjects, {} URLs",
            humanize(self.num_facts),
            humanize(self.num_predicates),
            humanize(self.num_subjects),
            humanize(self.num_urls)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn compute_deduplicates() {
        let mut t = Interner::new();
        let f1 = Fact::intern(&mut t, "a", "p", "1");
        let f2 = Fact::intern(&mut t, "b", "p", "2");
        let stats = DatasetStats::compute(vec![
            (f1, "http://x.com/1"),
            (f1, "http://x.com/1"),
            (f2, "http://x.com/2"),
        ]);
        assert_eq!(stats.num_facts, 2);
        assert_eq!(stats.num_predicates, 1);
        assert_eq!(stats.num_subjects, 2);
        assert_eq!(stats.num_urls, 2);
    }

    #[test]
    fn humanize_matches_paper_style() {
        assert_eq!(humanize(15_000_000), "15M");
        assert_eq!(humanize(2_900_000), "2.9M");
        assert_eq!(humanize(327_000), "327K");
        assert_eq!(humanize(859_123), "859K");
        assert_eq!(humanize(100), "100");
        assert_eq!(humanize(0), "0");
    }

    #[test]
    fn display_is_compact() {
        let s = DatasetStats {
            num_facts: 15_000_000,
            num_predicates: 327_000,
            num_subjects: 5_000,
            num_urls: 20_000_000,
        };
        assert_eq!(
            s.to_string(),
            "15M facts, 327K predicates, 5K subjects, 20M URLs"
        );
    }
}
