//! The `MSNP` snapshot container: a versioned, little-endian, section-based
//! binary format designed for zero-copy loading via [`Mmap`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      4 bytes   b"MSNP"
//! version    u32       SNAPSHOT_VERSION
//! cache_key  u64       content hash of the inputs that produced this file
//! sections   u32       number of directory entries
//! (pad)      u32       zero
//! directory  sections × { tag: u32, pad: u32, offset: u64, len: u64 }
//! payloads   each section 8-byte aligned, zero-padded between sections
//! checksum   u64       word-mixed hash of every byte before it
//! ```
//!
//! Section payloads are opaque byte ranges; higher layers read them through
//! [`SectionReader`], which hands out zero-copy [`Column`]s after bounds
//! and alignment checks. The trailing checksum makes truncation, bit flips
//! and appended garbage all fail closed, in the spirit of the `MKB1`
//! validation in [`crate::persist`].

use crate::column::{Column, Pod};
use crate::mmap::Mmap;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes identifying a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MSNP";

/// Container format version; bumped on any layout change. Participates in
/// cache keys so stale-format snapshots are never even opened as hits.
pub const SNAPSHOT_VERSION: u32 = 2;

const HEADER_LEN: usize = 4 + 4 + 8 + 4 + 4;
const DIR_ENTRY_LEN: usize = 4 + 4 + 8 + 8;
const CHECKSUM_LEN: usize = 8;

/// Errors from opening or reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file failed structural validation; the message says where.
    Corrupt(String),
    /// The file is sound but keyed to different inputs.
    KeyMismatch {
        /// The key the caller derived from the current inputs.
        expected: u64,
        /// The key stored in the snapshot header.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            SnapshotError::KeyMismatch { expected, found } => write!(
                f,
                "snapshot cache-key mismatch: expected {expected:016x}, found {found:016x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Word-mixed checksum over `bytes`: 8 bytes at a time through an
/// FNV-style multiply-xor with a final avalanche. Roughly 8× faster than
/// byte-at-a-time FNV, which matters at tens of megabytes per snapshot.
pub fn checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    // Final avalanche (xorshift-multiply) so short inputs still diffuse.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Assembles a snapshot in memory: sections are appended, then [`finish`]
/// lays them out 8-byte aligned behind the directory and seals the file
/// with the trailing checksum.
///
/// [`finish`]: SnapshotBuilder::finish
pub struct SnapshotBuilder {
    cache_key: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Starts a snapshot keyed by `cache_key`.
    pub fn new(cache_key: u64) -> SnapshotBuilder {
        SnapshotBuilder {
            cache_key,
            sections: Vec::new(),
        }
    }

    /// Appends a section and returns a writer for its payload.
    pub fn section(&mut self, tag: u32) -> SectionWriter<'_> {
        self.sections.push((tag, Vec::new()));
        let buf = &mut self
            .sections
            .last_mut()
            .unwrap_or_else(|| unreachable!("just pushed"))
            .1;
        SectionWriter { buf }
    }

    /// Serialises the container to bytes.
    pub fn finish(self) -> Vec<u8> {
        let dir_len = self.sections.len() * DIR_ENTRY_LEN;
        let mut payload_off = HEADER_LEN + dir_len;
        let mut out = Vec::with_capacity(
            payload_off
                + self
                    .sections
                    .iter()
                    .map(|(_, p)| p.len() + 8)
                    .sum::<usize>()
                + CHECKSUM_LEN,
        );
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.cache_key.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        // Directory: offsets are 8-byte aligned payload positions.
        let mut entries = Vec::with_capacity(self.sections.len());
        for (tag, payload) in &self.sections {
            payload_off = payload_off.div_ceil(8) * 8;
            entries.push((*tag, payload_off as u64, payload.len() as u64));
            payload_off += payload.len();
        }
        for (tag, off, len) in &entries {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        for ((_, payload), (_, off, _)) in self.sections.iter().zip(&entries) {
            out.resize(*off as usize, 0);
            out.extend_from_slice(payload);
        }
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Writes the container atomically: to `<path>.tmp.<pid>`, then rename,
    /// so concurrent readers only ever observe complete snapshots. Crash
    /// sites carry the `"snap"` prefix; see [`write_atomic_labeled`] to
    /// write under a different site prefix.
    ///
    /// [`write_atomic_labeled`]: SnapshotBuilder::write_atomic_labeled
    pub fn write_atomic(self, path: &Path) -> io::Result<()> {
        self.write_atomic_labeled(path, "snap")
    }

    /// Like [`write_atomic`], with the crash-site prefix named by the
    /// caller, so different artifacts sharing the container format (corpus
    /// snapshots, slice reports, augmentation checkpoints) expose distinct
    /// crash sites to the kill-anywhere harness.
    ///
    /// [`write_atomic`]: SnapshotBuilder::write_atomic
    pub fn write_atomic_labeled(self, path: &Path, site: &str) -> io::Result<()> {
        let bytes = self.finish();
        write_bytes_atomic(path, &bytes, site)
    }
}

/// Crash-site stages of [`write_bytes_atomic`], in execution order. The
/// kill-anywhere harness iterates this list (crossed with every site
/// prefix) to kill a forked CLI at each instant of the write path:
///
/// * `tmp.partial` — the temp file exists and is half-written (torn);
/// * `tmp.synced`  — the temp file is complete and fsynced, not yet visible;
/// * `renamed`     — the final name is in place, directory not yet fsynced;
/// * `dir.synced`  — everything durable (the trivial site).
pub const WRITE_CRASH_STAGES: [&str; 4] = ["tmp.partial", "tmp.synced", "renamed", "dir.synced"];

/// Crash-consistent atomic file write: `bytes` go to `<path>.tmp.<pid>`,
/// are flushed with `sync_all`, renamed over `path`, and the parent
/// directory is fsynced so the rename itself is durable. A crash at any
/// point leaves either the old file or the new one — never a torn mix —
/// plus at most an orphaned temp file that no reader ever trusts (readers
/// open `path` only). Each stage is a named [`crate::crashpoint`] site
/// `<site>.<stage>` (see [`WRITE_CRASH_STAGES`]).
pub fn write_bytes_atomic(path: &Path, bytes: &[u8], site: &str) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        // Split the payload so the `tmp.partial` site really is a torn
        // temp file, not an empty or complete one.
        let mid = bytes.len() / 2;
        f.write_all(&bytes[..mid])?;
        crate::crashpoint::hit(site, "tmp.partial");
        f.write_all(&bytes[mid..])?;
        f.sync_all()?;
        drop(f);
        crate::crashpoint::hit(site, "tmp.synced");
        std::fs::rename(&tmp, path)?;
        crate::crashpoint::hit(site, "renamed");
        sync_parent_dir(path)?;
        crate::crashpoint::hit(site, "dir.synced");
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Fsyncs the directory containing `path`, making a just-renamed entry
/// durable. On Unix a directory opens read-only like a file and `fsync`
/// flushes its entries; elsewhere this is a no-op (rename atomicity is all
/// the platform offers).
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Appends typed little-endian values to one section's payload.
pub struct SectionWriter<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> SectionWriter<'a> {
    /// Wraps a caller-owned buffer, so section payloads can be staged
    /// outside a [`SnapshotBuilder`] (e.g. cached and re-emitted later via
    /// [`SectionWriter::put_bytes`]) while sharing the same encoding
    /// primitives.
    pub fn over(buf: &'a mut Vec<u8>) -> SectionWriter<'a> {
        SectionWriter { buf }
    }
}

impl SectionWriter<'_> {
    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (alignment is the caller's concern).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the string's UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.put_bytes(s.as_bytes());
    }

    /// Appends a `[T]` column's raw bytes (no length prefix — callers
    /// record element counts themselves).
    pub fn put_column<T: Pod>(&mut self, values: &[T]) {
        // SAFETY: T: Pod has no padding, so its bytes are fully initialised.
        let bytes = unsafe {
            std::slice::from_raw_parts(values.as_ptr() as *const u8, std::mem::size_of_val(values))
        };
        self.buf.extend_from_slice(bytes);
    }

    /// Zero-pads to the next 4-byte boundary within the section.
    pub fn align4(&mut self) {
        while !self.buf.len().is_multiple_of(4) {
            self.buf.push(0);
        }
    }

    /// Zero-pads to the next 8-byte boundary within the section. Section
    /// payloads start 8-aligned in the file, so in-section alignment equals
    /// file alignment.
    pub fn align8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }
}

/// A validated, mmap-backed snapshot ready for zero-copy section reads.
pub struct Snapshot {
    map: Arc<Mmap>,
    cache_key: u64,
    /// `(tag, byte range within the mapping)` in directory order.
    directory: Vec<(u32, std::ops::Range<usize>)>,
}

impl Snapshot {
    /// Opens and validates the snapshot at `path`.
    pub fn open(path: &Path) -> Result<Snapshot, SnapshotError> {
        Self::from_mmap(Arc::new(Mmap::open(path)?))
    }

    /// Validates an in-memory container (tests, non-Unix fallback).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, SnapshotError> {
        Self::from_mmap(Arc::new(Mmap::from_vec(bytes)))
    }

    fn from_mmap(map: Arc<Mmap>) -> Result<Snapshot, SnapshotError> {
        assert_eq!(
            u32::from_le_bytes(1u32.to_le_bytes()),
            1,
            "snapshots are little-endian only"
        );
        let bytes = map.as_bytes();
        if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
            return Err(corrupt(format!(
                "file too short for header: {} bytes",
                bytes.len()
            )));
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let read_u32 =
            |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap_or([0; 4]));
        let read_u64 =
            |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap_or([0; 8]));
        let version = read_u32(4);
        if version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "format version mismatch: file has v{version}, reader expects v{SNAPSHOT_VERSION}"
            )));
        }
        let cache_key = read_u64(8);
        let n_sections = read_u32(16) as usize;
        let payload_end = bytes.len() - CHECKSUM_LEN;
        let stored_sum = read_u64(payload_end);
        let actual_sum = checksum(&bytes[..payload_end]);
        if stored_sum != actual_sum {
            return Err(corrupt(format!(
                "checksum mismatch: stored {stored_sum:016x}, computed {actual_sum:016x}"
            )));
        }
        let dir_end = HEADER_LEN
            .checked_add(
                n_sections
                    .checked_mul(DIR_ENTRY_LEN)
                    .ok_or_else(|| corrupt(format!("section count overflows: {n_sections}")))?,
            )
            .ok_or_else(|| corrupt("directory length overflows"))?;
        if dir_end > payload_end {
            return Err(corrupt(format!(
                "directory of {n_sections} section(s) exceeds file"
            )));
        }
        let mut directory = Vec::with_capacity(n_sections);
        for i in 0..n_sections {
            let entry = HEADER_LEN + i * DIR_ENTRY_LEN;
            let tag = read_u32(entry);
            // `try_from`, not `as`: on 32-bit targets an `as usize` cast
            // wraps 64-bit offsets, and a wrapped offset can alias a
            // different (in-bounds) section instead of failing validation.
            let off = usize::try_from(read_u64(entry + 8)).map_err(|_| {
                corrupt(format!(
                    "section {tag:#x} offset exceeds the addressable range"
                ))
            })?;
            let len = usize::try_from(read_u64(entry + 16)).map_err(|_| {
                corrupt(format!(
                    "section {tag:#x} length exceeds the addressable range"
                ))
            })?;
            let end = off
                .checked_add(len)
                .ok_or_else(|| corrupt(format!("section {tag:#x} length overflows")))?;
            if off < dir_end || end > payload_end {
                return Err(corrupt(format!(
                    "section {tag:#x} out of bounds: {off}..{end} not within {dir_end}..{payload_end}"
                )));
            }
            if !off.is_multiple_of(8) {
                return Err(corrupt(format!(
                    "section {tag:#x} payload misaligned at offset {off}"
                )));
            }
            directory.push((tag, off..end));
        }
        Ok(Snapshot {
            map,
            cache_key,
            directory,
        })
    }

    /// The cache key recorded in the header.
    pub fn cache_key(&self) -> u64 {
        self.cache_key
    }

    /// Tags present, in directory order.
    pub fn tags(&self) -> impl Iterator<Item = u32> + '_ {
        self.directory.iter().map(|(t, _)| *t)
    }

    /// A reader positioned at the start of the first section tagged `tag`.
    pub fn section(&self, tag: u32) -> Result<SectionReader<'_>, SnapshotError> {
        let (_, range) = self
            .directory
            .iter()
            .find(|(t, _)| *t == tag)
            .ok_or_else(|| corrupt(format!("missing section {tag:#x}")))?;
        Ok(SectionReader {
            map: &self.map,
            start: range.start,
            end: range.end,
            pos: range.start,
        })
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("cache_key", &format_args!("{:016x}", self.cache_key))
            .field("sections", &self.directory.len())
            .field("bytes", &self.map.len())
            .finish()
    }
}

/// Sequential typed reader over one section's payload. Every accessor
/// bounds-checks against the section range, mirroring the `need()`
/// discipline of the `MKB1` loader.
pub struct SectionReader<'a> {
    map: &'a Arc<Mmap>,
    start: usize,
    end: usize,
    pos: usize,
}

impl<'a> SectionReader<'a> {
    fn need(&self, n: usize, what: &str) -> Result<(), SnapshotError> {
        if self.pos.checked_add(n).is_none_or(|end| end > self.end) {
            return Err(corrupt(format!(
                "section truncated reading {what}: need {n} byte(s) at offset {}, {} remain",
                self.pos - self.start,
                self.end - self.pos
            )));
        }
        Ok(())
    }

    /// Bytes left in the section.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        self.need(4, what)?;
        let b = &self.map.as_bytes()[self.pos..self.pos + 4];
        self.pos += 4;
        Ok(u32::from_le_bytes(b.try_into().unwrap_or([0; 4])))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        self.need(8, what)?;
        let b = &self.map.as_bytes()[self.pos..self.pos + 8];
        self.pos += 8;
        Ok(u64::from_le_bytes(b.try_into().unwrap_or([0; 8])))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self, what: &str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads a `u32` length-prefixed UTF-8 string as an owned `String`.
    pub fn get_str(&mut self, what: &str) -> Result<String, SnapshotError> {
        self.get_str_ref(what).map(str::to_owned)
    }

    /// Reads a `u32` length-prefixed UTF-8 string borrowed straight from
    /// the mapping — no allocation. Bulk string tables (the interner dump
    /// runs to hundreds of thousands of entries) re-intern through this
    /// path so each term is copied exactly once, into the interner.
    pub fn get_str_ref(&mut self, what: &str) -> Result<&'a str, SnapshotError> {
        let len = self.get_u32(what)? as usize;
        self.need(len, what)?;
        let b = &self.map.as_bytes()[self.pos..self.pos + len];
        self.pos += len;
        std::str::from_utf8(b).map_err(|_| corrupt(format!("invalid UTF-8 in {what}")))
    }

    /// Borrows `len` elements of `T` zero-copy from the mapping, advancing
    /// past them. Fails on misalignment or truncation.
    pub fn get_column<T: Pod>(
        &mut self,
        len: usize,
        what: &str,
    ) -> Result<Column<T>, SnapshotError> {
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or_else(|| corrupt(format!("{what}: column length overflows")))?;
        self.need(bytes, what)?;
        let col = Column::mapped(Arc::clone(self.map), self.pos, len).ok_or_else(|| {
            corrupt(format!(
                "{what}: column misaligned at file offset {}",
                self.pos
            ))
        })?;
        self.pos += bytes;
        Ok(col)
    }

    /// Skips zero padding to the next 4-byte file boundary.
    pub fn align4(&mut self) -> Result<(), SnapshotError> {
        while !self.pos.is_multiple_of(4) {
            self.need(1, "alignment padding")?;
            self.pos += 1;
        }
        Ok(())
    }

    /// Skips zero padding to the next 8-byte file boundary.
    pub fn align8(&mut self) -> Result<(), SnapshotError> {
        while !self.pos.is_multiple_of(8) {
            self.need(1, "alignment padding")?;
            self.pos += 1;
        }
        Ok(())
    }

    /// Asserts the section has been fully consumed — trailing bytes inside
    /// a section mean the writer and reader disagree about the layout.
    pub fn expect_end(&self, what: &str) -> Result<(), SnapshotError> {
        if self.pos != self.end {
            return Err(corrupt(format!(
                "{} trailing byte(s) after {what}",
                self.end - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SnapshotBuilder::new(0xdead_beef_1234_5678);
        let mut s = b.section(0x10);
        s.put_u32(3);
        s.put_column::<u32>(&[7, 8, 9]);
        let mut s = b.section(0x20);
        s.put_str("hello");
        s.align8();
        s.put_column::<u64>(&[u64::MAX, 42]);
        b.finish()
    }

    #[test]
    fn round_trips_sections_and_key() {
        let snap = Snapshot::from_bytes(sample()).unwrap();
        assert_eq!(snap.cache_key(), 0xdead_beef_1234_5678);
        assert_eq!(snap.tags().collect::<Vec<_>>(), vec![0x10, 0x20]);

        let mut s = snap.section(0x10).unwrap();
        let n = s.get_u32("count").unwrap() as usize;
        let col = s.get_column::<u32>(n, "values").unwrap();
        assert!(col.is_mapped());
        assert_eq!(&*col, &[7, 8, 9]);
        s.expect_end("section 0x10").unwrap();

        let mut s = snap.section(0x20).unwrap();
        assert_eq!(s.get_str("greeting").unwrap(), "hello");
        s.align8().unwrap();
        let col = s.get_column::<u64>(2, "words").unwrap();
        assert_eq!(&*col, &[u64::MAX, 42]);
        s.expect_end("section 0x20").unwrap();
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(bytes[..cut].to_vec()).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn rejects_any_single_bit_flip() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Snapshot::from_bytes(bad).is_err(),
                "bit flip at byte {i} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample();
        bytes.extend_from_slice(b"extra");
        assert!(Snapshot::from_bytes(bytes).is_err());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bad = sample();
        bad[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(bad),
            Err(SnapshotError::Corrupt(m)) if m.contains("magic")
        ));

        // A version bump must re-seal the checksum to reach the version
        // check — proving validation order (checksum already covers it).
        let mut b = SnapshotBuilder::new(1).finish();
        b[4] = SNAPSHOT_VERSION as u8 + 1;
        let sum = checksum(&b[..b.len() - 8]).to_le_bytes();
        let n = b.len();
        b[n - 8..].copy_from_slice(&sum);
        assert!(matches!(
            Snapshot::from_bytes(b),
            Err(SnapshotError::Corrupt(m)) if m.contains("version")
        ));
    }

    #[test]
    fn missing_section_and_over_read_fail() {
        let snap = Snapshot::from_bytes(sample()).unwrap();
        assert!(snap.section(0x99).is_err());
        let mut s = snap.section(0x10).unwrap();
        assert!(s.get_column::<u32>(64, "too many").is_err());
    }

    #[test]
    fn out_of_range_directory_entry_fails_closed() {
        // Force the second directory entry's length to u64::MAX and re-seal
        // the checksum so validation reaches the bounds logic. On 64-bit
        // hosts the huge length overflows `off + len`; on 32-bit hosts the
        // `try_from` narrowing refuses it first. Either way the file must
        // surface as `Corrupt` (the quarantine-and-heal route), never as a
        // silently-aliased section.
        let mut bytes = sample();
        let entry = HEADER_LEN + DIR_ENTRY_LEN; // second section's entry
        bytes[entry + 16..entry + 24].copy_from_slice(&u64::MAX.to_le_bytes());
        let sum = checksum(&bytes[..bytes.len() - CHECKSUM_LEN]).to_le_bytes();
        let n = bytes.len();
        bytes[n - CHECKSUM_LEN..].copy_from_slice(&sum);
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::Corrupt(m))
                if m.contains("section") && (m.contains("overflow") || m.contains("addressable"))
        ));
    }

    #[test]
    fn checksum_differentiates_lengths_and_contents() {
        assert_ne!(checksum(b""), checksum(b"\0"));
        assert_ne!(checksum(b"\0\0"), checksum(b"\0"));
        assert_ne!(checksum(b"abcdefgh"), checksum(b"abcdefgi"));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::from_bytes(SnapshotBuilder::new(7).finish()).unwrap();
        assert_eq!(snap.cache_key(), 7);
        assert_eq!(snap.tags().count(), 0);
    }

    #[test]
    fn write_atomic_then_open() {
        let path = std::env::temp_dir().join(format!("midas-snap-{}.snap", std::process::id()));
        let mut b = SnapshotBuilder::new(11);
        b.section(1).put_u32(99);
        b.write_atomic(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.cache_key(), 11);
        let mut s = snap.section(1).unwrap();
        assert_eq!(s.get_u32("v").unwrap(), 99);
        std::fs::remove_file(&path).ok();
    }
}
