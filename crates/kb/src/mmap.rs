//! Read-only memory mappings for zero-copy snapshot loading.
//!
//! The build environment is offline, so no `memmap2`-style crate is
//! available; on Unix this module declares the two libc entry points it
//! needs (`mmap`, `munmap`) directly and wraps them in a safe, owning
//! [`Mmap`] handle. On other platforms — and for in-memory snapshots in
//! tests — the same type is backed by a plain `Vec<u8>`, so every consumer
//! sees one API regardless of where the bytes live.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

enum Backing {
    /// An owned buffer (empty files, non-Unix platforms, in-memory tests).
    Owned(Vec<u8>),
    /// A live `mmap(2)` region; unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
}

/// An immutable byte region: either a private read-only file mapping or an
/// owned buffer. Cheap to share via `Arc<Mmap>`; columns borrow from it.
pub struct Mmap {
    backing: Backing,
}

// SAFETY: the mapped region is PROT_READ/MAP_PRIVATE — it is never written
// through this handle and the kernel keeps it valid until `munmap`, which
// only happens in `Drop`. Shared `&Mmap` access is therefore data-race free.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only. Empty files fall back to an owned empty
    /// buffer (`mmap` rejects zero-length mappings).
    #[cfg(unix)]
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Owned(Vec::new()),
            });
        }
        // SAFETY: fd is a valid open file descriptor for `file`, len is the
        // file's current size, and we request a private read-only mapping.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            backing: Backing::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    /// Non-Unix fallback: read the whole file into an owned buffer.
    #[cfg(not(unix))]
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(Mmap::from_vec(buf))
    }

    /// Opens and maps the file at `path`.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        Self::map_file(&File::open(path)?)
    }

    /// Wraps an owned buffer in the `Mmap` interface (tests, fallbacks).
    pub fn from_vec(bytes: Vec<u8>) -> Mmap {
        Mmap {
            backing: Backing::Owned(bytes),
        }
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Owned(v) => v,
            // SAFETY: ptr/len describe the live mapping owned by self.
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len came from a successful mmap owned exclusively
            // by this handle; after munmap nothing dereferences them.
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            Backing::Owned(_) => "owned",
            #[cfg(unix)]
            Backing::Mapped { .. } => "mapped",
        };
        f.debug_struct("Mmap")
            .field("kind", &kind)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "midas-mmap-{tag}-{}-{bytes_len}",
            std::process::id(),
            bytes_len = bytes.len()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp_file("contents", b"hello mapping");
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_bytes(), b"hello mapping");
        assert_eq!(map.len(), 13);
        assert!(!map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_region() {
        let path = tmp_file("empty", b"");
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn owned_buffer_round_trips() {
        let map = Mmap::from_vec(vec![1, 2, 3]);
        assert_eq!(map.as_bytes(), &[1, 2, 3]);
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = tmp_file("threads", &[7u8; 4096]);
        let map = std::sync::Arc::new(Mmap::open(&path).unwrap());
        let m2 = std::sync::Arc::clone(&map);
        let handle = std::thread::spawn(move || m2.as_bytes().iter().map(|&b| b as u64).sum());
        let total: u64 = handle.join().unwrap();
        assert_eq!(total, 7 * 4096);
        std::fs::remove_file(&path).ok();
    }
}
