//! RDF-style facts.

use crate::interner::{Interner, Symbol};
use std::fmt;

/// A single `(subject, predicate, object)` triple with interned terms.
///
/// Facts are `Copy` (12 bytes) and order lexicographically by
/// `(subject, predicate, object)` symbol index, which is the order the SPO
/// index stores them in.
/// `repr(C)` pins the field order so snapshot columns can reinterpret
/// `[Fact]` from raw bytes (12 bytes, align 4, no padding — see the
/// `fact_is_small_and_copy` test and `crate::column`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(C)]
pub struct Fact {
    /// The entity the fact is about (e.g. `Project Mercury`).
    pub subject: Symbol,
    /// The property name (e.g. `sponsor`).
    pub predicate: Symbol,
    /// The property value (e.g. `NASA`).
    pub object: Symbol,
}

impl Fact {
    /// Builds a fact from three interned terms.
    #[inline]
    pub fn new(subject: Symbol, predicate: Symbol, object: Symbol) -> Self {
        Fact {
            subject,
            predicate,
            object,
        }
    }

    /// Interns the three string terms of a fact in one call.
    pub fn intern(terms: &mut Interner, s: &str, p: &str, o: &str) -> Self {
        Fact::new(terms.intern(s), terms.intern(p), terms.intern(o))
    }

    /// The `(predicate, object)` pair — a *property* in MIDAS terminology
    /// (Definition 4 of the paper).
    #[inline]
    pub fn property(&self) -> (Symbol, Symbol) {
        (self.predicate, self.object)
    }

    /// Renders the fact with resolved terms, for reports and debugging.
    pub fn display<'a>(&'a self, terms: &'a Interner) -> FactDisplay<'a> {
        FactDisplay { fact: self, terms }
    }
}

/// Borrowing display adapter returned by [`Fact::display`].
pub struct FactDisplay<'a> {
    fact: &'a Fact,
    terms: &'a Interner,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.terms.resolve(self.fact.subject),
            self.terms.resolve(self.fact.predicate),
            self.terms.resolve(self.fact.object)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_builds_consistent_fact() {
        let mut t = Interner::new();
        let f = Fact::intern(&mut t, "Atlas", "category", "rocket_family");
        assert_eq!(t.resolve(f.subject), "Atlas");
        assert_eq!(t.resolve(f.predicate), "category");
        assert_eq!(t.resolve(f.object), "rocket_family");
    }

    #[test]
    fn property_is_predicate_object_pair() {
        let mut t = Interner::new();
        let f = Fact::intern(&mut t, "Atlas", "sponsor", "NASA");
        assert_eq!(f.property(), (f.predicate, f.object));
    }

    #[test]
    fn facts_order_by_spo() {
        let mut t = Interner::new();
        let a = Fact::intern(&mut t, "a", "p", "x");
        let b = Fact::intern(&mut t, "b", "p", "x");
        let a2 = Fact::intern(&mut t, "a", "q", "x");
        assert!(a < b);
        assert!(a < a2);
    }

    #[test]
    fn display_resolves_terms() {
        let mut t = Interner::new();
        let f = Fact::intern(&mut t, "Castor-4", "started", "1971");
        assert_eq!(f.display(&t).to_string(), "(Castor-4, started, 1971)");
    }

    #[test]
    fn fact_is_small_and_copy() {
        assert_eq!(std::mem::size_of::<Fact>(), 12);
        let mut t = Interner::new();
        let f = Fact::intern(&mut t, "s", "p", "o");
        let g = f; // Copy
        assert_eq!(f, g);
    }
}
