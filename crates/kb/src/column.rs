//! Copy-on-write columns over plain-old-data element types.
//!
//! A [`Column<T>`] is the storage primitive of the snapshot subsystem: it
//! reads like a `&[T]` whether the elements live in an owned `Vec<T>` or
//! borrow directly from a shared memory mapping ([`Mmap`]). Loading a
//! snapshot therefore allocates nothing for the large numeric columns —
//! `FactTable` ids, prefix sums, dense extent blocks — and the first
//! mutation ([`Column::make_mut`]) transparently copies the column out of
//! the mapping.

use crate::mmap::Mmap;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for element types that are safe to reinterpret from raw snapshot
/// bytes: `Copy`, no padding, no niches, every bit pattern valid, and a
/// fixed little-endian-compatible layout (`#[repr(transparent)]` over or
/// `#[repr(C)]` composed of `u32`/`u64`).
///
/// # Safety
///
/// Implementors must guarantee all of the above; `Column::mapped` casts
/// `&[u8]` to `&[T]` on the strength of this contract.
pub unsafe trait Pod: Copy + 'static {}

// SAFETY: primitive unsigned integers are padding-free and valid for every
// bit pattern. (Snapshots are little-endian by construction; the workspace
// targets little-endian platforms — asserted at snapshot open.)
unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
// SAFETY: Symbol is #[repr(transparent)] over u32; Fact is #[repr(C)] of
// three Symbols — 12 bytes, align 4, no padding, all bit patterns valid.
unsafe impl Pod for crate::interner::Symbol {}
unsafe impl Pod for crate::fact::Fact {}

enum Repr<T: Pod> {
    Owned(Vec<T>),
    Mapped {
        map: Arc<Mmap>,
        /// Byte offset of the first element within the mapping.
        off: usize,
        /// Element (not byte) count.
        len: usize,
    },
}

/// A read-mostly `[T]` that either owns its buffer or borrows a region of
/// a shared memory mapping, copying on first write.
pub struct Column<T: Pod> {
    repr: Repr<T>,
}

impl<T: Pod> Column<T> {
    /// An empty owned column.
    pub fn new() -> Column<T> {
        Column {
            repr: Repr::Owned(Vec::new()),
        }
    }

    /// Wraps an owned buffer.
    pub fn from_vec(v: Vec<T>) -> Column<T> {
        Column {
            repr: Repr::Owned(v),
        }
    }

    /// Borrows `len` elements starting at byte offset `off` of `map`.
    ///
    /// Returns `None` when the region is out of bounds, misaligned for `T`,
    /// or its byte length would overflow — the caller (the snapshot reader)
    /// turns that into a corruption error.
    pub fn mapped(map: Arc<Mmap>, off: usize, len: usize) -> Option<Column<T>> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = off.checked_add(bytes)?;
        if end > map.len() {
            return None;
        }
        let ptr = map.as_bytes().as_ptr() as usize + off;
        if !ptr.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Column {
            repr: Repr::Mapped { map, off, len },
        })
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped { map, off, len } => {
                // SAFETY: bounds and alignment were validated in `mapped`;
                // T: Pod guarantees every bit pattern is a valid T; the Arc
                // keeps the mapping alive for the borrow's duration.
                unsafe {
                    std::slice::from_raw_parts(map.as_bytes().as_ptr().add(*off) as *const T, *len)
                }
            }
        }
    }

    /// Whether the column still borrows from a mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }

    /// Mutable access, copying the column out of the mapping first if
    /// needed (copy-on-write).
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        if let Repr::Mapped { .. } = self.repr {
            self.repr = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => unreachable!("just converted to owned"),
        }
    }

    /// Extracts the owned buffer, cloning if the column was mapped.
    pub fn into_vec(self) -> Vec<T> {
        match self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => self.as_slice().to_vec(),
        }
    }

    /// Takes the owned buffer for recycling, leaving the column empty.
    /// Mapped columns return `None` — there is nothing to recycle, the
    /// backing store belongs to the mapping.
    pub fn take_owned(&mut self) -> Option<Vec<T>> {
        match &mut self.repr {
            Repr::Owned(v) => Some(std::mem::take(v)),
            Repr::Mapped { .. } => None,
        }
    }
}

impl<T: Pod> Deref for Column<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Default for Column<T> {
    fn default() -> Self {
        Column::new()
    }
}

impl<T: Pod> Clone for Column<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Column::from_vec(v.clone()),
            Repr::Mapped { map, off, len } => Column {
                repr: Repr::Mapped {
                    map: Arc::clone(map),
                    off: *off,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Pod> From<Vec<T>> for Column<T> {
    fn from(v: Vec<T>) -> Self {
        Column::from_vec(v)
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Column<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Pod + PartialEq> PartialEq for Column<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for Column<T> {}

impl<'a, T: Pod> IntoIterator for &'a Column<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Pod> FromIterator<T> for Column<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Column::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping_of_u32s(values: &[u32]) -> Arc<Mmap> {
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        Arc::new(Mmap::from_vec(bytes))
    }

    #[test]
    fn owned_column_acts_like_a_slice() {
        let col: Column<u32> = vec![1, 2, 3].into();
        assert_eq!(&*col, &[1, 2, 3]);
        assert_eq!(col.len(), 3);
        assert!(!col.is_mapped());
    }

    #[test]
    fn mapped_column_reads_in_place() {
        let map = mapping_of_u32s(&[10, 20, 30, 40]);
        let col = Column::<u32>::mapped(Arc::clone(&map), 4, 2).unwrap();
        assert!(col.is_mapped());
        assert_eq!(&*col, &[20, 30]);
    }

    #[test]
    fn mapped_rejects_out_of_bounds_and_misalignment() {
        let map = mapping_of_u32s(&[1, 2]);
        assert!(Column::<u32>::mapped(Arc::clone(&map), 0, 3).is_none());
        assert!(Column::<u32>::mapped(Arc::clone(&map), 9, 1).is_none());
        assert!(
            Column::<u64>::mapped(Arc::clone(&map), 4, 1).is_none(),
            "align 8 at offset 4"
        );
        assert!(Column::<u32>::mapped(Arc::clone(&map), usize::MAX, 2).is_none());
    }

    #[test]
    fn make_mut_copies_out_of_the_mapping() {
        let map = mapping_of_u32s(&[5, 6]);
        let mut col = Column::<u32>::mapped(map, 0, 2).unwrap();
        col.make_mut().push(7);
        assert!(!col.is_mapped());
        assert_eq!(&*col, &[5, 6, 7]);
    }

    #[test]
    fn take_owned_only_recycles_owned_buffers() {
        let map = mapping_of_u32s(&[1]);
        let mut mapped = Column::<u32>::mapped(map, 0, 1).unwrap();
        assert!(mapped.take_owned().is_none());
        let mut owned: Column<u32> = vec![9].into();
        assert_eq!(owned.take_owned(), Some(vec![9]));
        assert!(owned.is_empty());
    }

    #[test]
    fn clone_of_mapped_column_shares_the_mapping() {
        let map = mapping_of_u32s(&[8, 9]);
        let col = Column::<u32>::mapped(map, 0, 2).unwrap();
        let copy = col.clone();
        assert!(copy.is_mapped());
        assert_eq!(col, copy);
    }

    #[test]
    fn equality_is_by_contents_across_reprs() {
        let map = mapping_of_u32s(&[3, 4]);
        let mapped = Column::<u32>::mapped(map, 0, 2).unwrap();
        let owned: Column<u32> = vec![3, 4].into();
        assert_eq!(mapped, owned);
    }

    #[test]
    fn zero_length_mapped_columns_are_valid_anywhere_in_bounds() {
        let map = mapping_of_u32s(&[1, 2]);
        // Empty view at the start, mid-mapping, and exactly at the end —
        // `off == map.len()` with `len == 0` is in bounds, one past is not.
        for off in [0, 4, 8] {
            let col = Column::<u32>::mapped(Arc::clone(&map), off, 0).unwrap();
            assert!(col.is_empty());
            assert_eq!(&*col, &[] as &[u32]);
        }
        assert!(Column::<u32>::mapped(Arc::clone(&map), 9, 0).is_none());
        // An empty column still copies out and recycles like any other.
        let mut col = Column::<u32>::mapped(map, 8, 0).unwrap();
        assert!(col.take_owned().is_none(), "still mapped, nothing to take");
        assert_eq!(col.clone().into_vec(), Vec::<u32>::new());
        col.make_mut().push(11);
        assert_eq!(&*col, &[11]);
    }

    #[test]
    fn into_vec_of_a_mapped_clone_copies_without_detaching_siblings() {
        let map = mapping_of_u32s(&[7, 8, 9]);
        let col = Column::<u32>::mapped(map, 0, 3).unwrap();
        let copied = col.clone().into_vec();
        assert_eq!(copied, vec![7, 8, 9]);
        assert!(col.is_mapped(), "into_vec on the clone is a pure copy");
        assert_eq!(&*col, &[7, 8, 9]);
    }

    #[test]
    fn make_mut_on_one_clone_leaves_the_sibling_mapped_and_unchanged() {
        let map = mapping_of_u32s(&[1, 2, 3]);
        let original = Column::<u32>::mapped(map, 0, 3).unwrap();
        let mut edited = original.clone();
        edited.make_mut()[0] = 100;
        edited.make_mut().push(4);
        // Copy-on-write isolation: the edit never touches the shared bytes.
        assert_eq!(&*edited, &[100, 2, 3, 4]);
        assert!(!edited.is_mapped());
        assert!(original.is_mapped());
        assert_eq!(&*original, &[1, 2, 3]);
    }

    #[test]
    fn take_owned_failure_leaves_a_mapped_column_fully_readable() {
        let map = mapping_of_u32s(&[5, 6]);
        let mut col = Column::<u32>::mapped(map, 0, 2).unwrap();
        assert!(col.take_owned().is_none());
        assert!(col.take_owned().is_none(), "repeated takes stay None");
        // The refused take must not have drained or detached the column.
        assert!(col.is_mapped());
        assert_eq!(&*col, &[5, 6]);
        // After copy-on-write the same column becomes recyclable.
        col.make_mut();
        assert_eq!(col.take_owned(), Some(vec![5, 6]));
        assert!(col.is_empty());
    }
}
