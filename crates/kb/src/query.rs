//! A small conjunctive query engine over the knowledge base.
//!
//! Web source slices *are* conjunctive selection queries (Definition 5):
//! "entities with `category = rocket_family ∧ sponsor = NASA`". This module
//! lets downstream users execute exactly that class of queries against a
//! [`KnowledgeBase`] — e.g. to check what an existing KB already knows about
//! a slice MIDAS suggested, or to de-duplicate a crawl against it.
//!
//! The engine supports equality conditions on `(predicate, object)` pairs,
//! plus existence conditions (`has predicate p`), evaluated by intersecting
//! the POS-index extents smallest-first.

use crate::fact::Fact;
use crate::index::TripleIndex;
use crate::interner::Symbol;
use crate::store::KnowledgeBase;

/// One conjunct of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// `predicate = value`.
    Equals(Symbol, Symbol),
    /// entity has *some* fact with this predicate.
    Has(Symbol),
}

/// A conjunctive query over entities.
#[derive(Debug, Clone, Default)]
pub struct ConjunctiveQuery {
    conditions: Vec<Condition>,
}

impl ConjunctiveQuery {
    /// The empty query (matches every subject in the store).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a `predicate = value` condition.
    pub fn with_property(mut self, predicate: Symbol, value: Symbol) -> Self {
        self.conditions.push(Condition::Equals(predicate, value));
        self
    }

    /// Adds a `has predicate` condition.
    pub fn with_predicate(mut self, predicate: Symbol) -> Self {
        self.conditions.push(Condition::Has(predicate));
        self
    }

    /// The conjuncts in insertion order.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Whether the query has no conditions.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }

    fn extent(&self, index: &TripleIndex, cond: &Condition) -> Vec<Symbol> {
        match *cond {
            Condition::Equals(p, o) => {
                let mut subs: Vec<Symbol> = index.subjects_with_property(p, o).collect();
                subs.dedup();
                subs
            }
            Condition::Has(p) => {
                let mut subs: Vec<Symbol> =
                    index.facts_for_predicate(p).map(|f| f.subject).collect();
                subs.sort_unstable();
                subs.dedup();
                subs
            }
        }
    }

    /// Entities matching every condition, in symbol order.
    pub fn select(&self, kb: &KnowledgeBase) -> Vec<Symbol> {
        let index = kb.index();
        if self.conditions.is_empty() {
            return index.subjects();
        }
        let mut extents: Vec<Vec<Symbol>> = self
            .conditions
            .iter()
            .map(|c| self.extent(index, c))
            .collect();
        extents.sort_by_key(Vec::len);
        let mut acc = extents[0].clone();
        for other in &extents[1..] {
            let mut out = Vec::with_capacity(acc.len().min(other.len()));
            let (mut i, mut j) = (0, 0);
            while i < acc.len() && j < other.len() {
                match acc[i].cmp(&other[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(acc[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            acc = out;
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// All facts of the matching entities — the `Π*` of a slice executed
    /// against this store.
    pub fn select_facts(&self, kb: &KnowledgeBase) -> Vec<Fact> {
        self.select(kb)
            .into_iter()
            .flat_map(|s| kb.facts_for_subject(s).collect::<Vec<_>>())
            .collect()
    }

    /// Number of matching entities.
    pub fn count(&self, kb: &KnowledgeBase) -> usize {
        self.select(kb).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn sample() -> (Interner, KnowledgeBase) {
        let mut t = Interner::new();
        let rows = [
            ("atlas", "category", "rocket_family"),
            ("atlas", "sponsor", "NASA"),
            ("atlas", "started", "1957"),
            ("castor", "category", "rocket_family"),
            ("castor", "sponsor", "NASA"),
            ("mercury", "category", "space_program"),
            ("mercury", "sponsor", "NASA"),
            ("soyuz", "category", "rocket_family"),
            ("soyuz", "sponsor", "Roscosmos"),
        ];
        let kb = rows
            .iter()
            .map(|&(s, p, o)| Fact::intern(&mut t, s, p, o))
            .collect();
        (t, kb)
    }

    #[test]
    fn single_equality_condition() {
        let (mut t, kb) = sample();
        let q =
            ConjunctiveQuery::new().with_property(t.intern("category"), t.intern("rocket_family"));
        let names: Vec<&str> = q.select(&kb).iter().map(|&s| t.resolve(s)).collect();
        assert_eq!(names, vec!["atlas", "castor", "soyuz"]);
    }

    #[test]
    fn conjunction_intersects() {
        let (mut t, kb) = sample();
        let q = ConjunctiveQuery::new()
            .with_property(t.intern("category"), t.intern("rocket_family"))
            .with_property(t.intern("sponsor"), t.intern("NASA"));
        let names: Vec<&str> = q.select(&kb).iter().map(|&s| t.resolve(s)).collect();
        assert_eq!(names, vec!["atlas", "castor"]);
        assert_eq!(q.count(&kb), 2);
    }

    #[test]
    fn has_condition_checks_existence() {
        let (mut t, kb) = sample();
        let q = ConjunctiveQuery::new().with_predicate(t.intern("started"));
        let names: Vec<&str> = q.select(&kb).iter().map(|&s| t.resolve(s)).collect();
        assert_eq!(names, vec!["atlas"]);
    }

    #[test]
    fn empty_query_matches_everything() {
        let (_, kb) = sample();
        let q = ConjunctiveQuery::new();
        assert!(q.is_empty());
        assert_eq!(q.count(&kb), 4);
    }

    #[test]
    fn unsatisfiable_conjunction_is_empty() {
        let (mut t, kb) = sample();
        let q = ConjunctiveQuery::new()
            .with_property(t.intern("category"), t.intern("space_program"))
            .with_property(t.intern("sponsor"), t.intern("Roscosmos"));
        assert_eq!(q.count(&kb), 0);
        assert!(q.select_facts(&kb).is_empty());
    }

    #[test]
    fn select_facts_returns_full_rows() {
        let (mut t, kb) = sample();
        let q = ConjunctiveQuery::new().with_property(t.intern("started"), t.intern("1957"));
        let facts = q.select_facts(&kb);
        assert_eq!(
            facts.len(),
            3,
            "all of atlas's facts, not just the matching one"
        );
    }

    #[test]
    fn unknown_symbols_match_nothing() {
        let (mut t, kb) = sample();
        let q = ConjunctiveQuery::new().with_property(t.intern("nonexistent"), t.intern("x"));
        assert_eq!(q.count(&kb), 0);
    }
}
