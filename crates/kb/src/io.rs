//! Reading and writing triple files.
//!
//! Two line-oriented formats are supported:
//!
//! * **TSV** — `subject \t predicate \t object` with backslash escapes for
//!   tab, newline, and backslash inside terms. This is the working format of
//!   the harness (fast, diff-friendly).
//! * **N-Triples-like** — `<subject> <predicate> <object> .` with `%`-style
//!   escapes for `<`, `>`, and `%` inside terms. Close enough to RDF
//!   N-Triples to interoperate with simple tooling, without pulling in an
//!   RDF dependency.
//!
//! Both readers intern terms into a caller-supplied [`Interner`], skip blank
//! lines and `#` comments, and report malformed lines with their line number.

use crate::error::KbError;
use crate::fact::Fact;
use crate::interner::Interner;
use std::io::{BufRead, Write};

fn escape_tsv(term: &str, out: &mut String) {
    // A subject beginning with '#' would read back as a comment line.
    if let Some(rest) = term.strip_prefix('#') {
        out.push_str("\\#");
        escape_tsv_rest(rest, out);
    } else {
        escape_tsv_rest(term, out);
    }
}

fn escape_tsv_rest(term: &str, out: &mut String) {
    for ch in term.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn unescape_tsv(field: &str, line: usize) -> Result<String, KbError> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('#') => out.push('#'),
            other => {
                return Err(KbError::Parse {
                    line,
                    message: format!("invalid escape sequence \\{}", other.unwrap_or(' ')),
                })
            }
        }
    }
    Ok(out)
}

/// Writes facts as TSV lines.
pub fn write_tsv<W: Write>(
    mut w: W,
    terms: &Interner,
    facts: impl IntoIterator<Item = Fact>,
) -> Result<(), KbError> {
    let mut buf = String::new();
    for f in facts {
        buf.clear();
        escape_tsv(terms.resolve(f.subject), &mut buf);
        buf.push('\t');
        escape_tsv(terms.resolve(f.predicate), &mut buf);
        buf.push('\t');
        escape_tsv(terms.resolve(f.object), &mut buf);
        buf.push('\n');
        w.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Reads TSV facts, interning terms into `terms`.
pub fn read_tsv<R: BufRead>(r: R, terms: &mut Interner) -> Result<Vec<Fact>, KbError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let trimmed = line.trim_end_matches('\r');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let (s, p, o) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(s), Some(p), Some(o), None) => (s, p, o),
            _ => {
                return Err(KbError::Parse {
                    line: lineno,
                    message: "expected exactly three tab-separated fields".into(),
                })
            }
        };
        let s = unescape_tsv(s, lineno)?;
        let p = unescape_tsv(p, lineno)?;
        let o = unescape_tsv(o, lineno)?;
        out.push(Fact::intern(terms, &s, &p, &o));
    }
    Ok(out)
}

fn escape_nt(term: &str, out: &mut String) {
    for ch in term.chars() {
        match ch {
            '%' => out.push_str("%25"),
            '<' => out.push_str("%3C"),
            '>' => out.push_str("%3E"),
            // The format is line-oriented, so line breaks must not survive
            // into the output verbatim.
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
}

fn unescape_nt(term: &str, line: usize) -> Result<String, KbError> {
    let mut out = String::with_capacity(term.len());
    let bytes = term.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 >= bytes.len() {
                return Err(KbError::Parse {
                    line,
                    message: "truncated %-escape".into(),
                });
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).map_err(|_| KbError::Parse {
                line,
                message: "non-UTF8 %-escape".into(),
            })?;
            let byte = u8::from_str_radix(hex, 16).map_err(|_| KbError::Parse {
                line,
                message: format!("invalid %-escape %{hex}"),
            })?;
            out.push(byte as char);
            i += 3;
        } else {
            // Safe: we advance on char boundaries of the original string.
            let ch = term[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Ok(out)
}

/// Writes facts in the N-Triples-like `<s> <p> <o> .` format.
pub fn write_ntriples<W: Write>(
    mut w: W,
    terms: &Interner,
    facts: impl IntoIterator<Item = Fact>,
) -> Result<(), KbError> {
    let mut buf = String::new();
    for f in facts {
        buf.clear();
        buf.push('<');
        escape_nt(terms.resolve(f.subject), &mut buf);
        buf.push_str("> <");
        escape_nt(terms.resolve(f.predicate), &mut buf);
        buf.push_str("> <");
        escape_nt(terms.resolve(f.object), &mut buf);
        buf.push_str("> .\n");
        w.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Reads N-Triples-like facts, interning terms into `terms`.
pub fn read_ntriples<R: BufRead>(r: R, terms: &mut Interner) -> Result<Vec<Fact>, KbError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let body = trimmed
            .strip_suffix('.')
            .map(str::trim_end)
            .ok_or_else(|| KbError::Parse {
                line: lineno,
                message: "missing terminating '.'".into(),
            })?;
        let mut fields = Vec::with_capacity(3);
        let mut rest = body;
        for _ in 0..3 {
            rest = rest.trim_start();
            let inner = rest.strip_prefix('<').ok_or_else(|| KbError::Parse {
                line: lineno,
                message: "expected '<'-delimited term".into(),
            })?;
            let end = inner.find('>').ok_or_else(|| KbError::Parse {
                line: lineno,
                message: "unterminated term (no '>')".into(),
            })?;
            fields.push(&inner[..end]);
            rest = &inner[end + 1..];
        }
        if !rest.trim().is_empty() {
            return Err(KbError::Parse {
                line: lineno,
                message: "trailing content after object term".into(),
            });
        }
        let s = unescape_nt(fields[0], lineno)?;
        let p = unescape_nt(fields[1], lineno)?;
        let o = unescape_nt(fields[2], lineno)?;
        out.push(Fact::intern(terms, &s, &p, &o));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_facts(terms: &mut Interner) -> Vec<Fact> {
        vec![
            Fact::intern(terms, "Project Mercury", "category", "space_program"),
            Fact::intern(terms, "Atlas", "started", "1957"),
            Fact::intern(terms, "weird\tterm", "has\nnewline", "back\\slash"),
            Fact::intern(terms, "angle<bracket>", "percent%", "plain"),
            Fact::intern(terms, "#leading-hash", "p", "#also-hash"),
        ]
    }

    #[test]
    fn tsv_round_trip_preserves_terms() {
        let mut terms = Interner::new();
        let facts = sample_facts(&mut terms);
        let mut buf = Vec::new();
        write_tsv(&mut buf, &terms, facts.iter().copied()).unwrap();
        let mut terms2 = Interner::new();
        let back = read_tsv(&buf[..], &mut terms2).unwrap();
        assert_eq!(back.len(), facts.len());
        for (a, b) in facts.iter().zip(&back) {
            assert_eq!(terms.resolve(a.subject), terms2.resolve(b.subject));
            assert_eq!(terms.resolve(a.predicate), terms2.resolve(b.predicate));
            assert_eq!(terms.resolve(a.object), terms2.resolve(b.object));
        }
    }

    #[test]
    fn ntriples_round_trip_preserves_terms() {
        let mut terms = Interner::new();
        let facts = sample_facts(&mut terms);
        let mut buf = Vec::new();
        write_ntriples(&mut buf, &terms, facts.iter().copied()).unwrap();
        let mut terms2 = Interner::new();
        let back = read_ntriples(&buf[..], &mut terms2).unwrap();
        assert_eq!(back.len(), facts.len());
        for (a, b) in facts.iter().zip(&back) {
            assert_eq!(terms.resolve(a.subject), terms2.resolve(b.subject));
            assert_eq!(terms.resolve(a.predicate), terms2.resolve(b.predicate));
            assert_eq!(terms.resolve(a.object), terms2.resolve(b.object));
        }
    }

    #[test]
    fn tsv_skips_comments_and_blanks() {
        let input = b"# header\n\na\tp\t1\n";
        let mut terms = Interner::new();
        let facts = read_tsv(&input[..], &mut terms).unwrap();
        assert_eq!(facts.len(), 1);
    }

    #[test]
    fn tsv_rejects_wrong_field_count() {
        let input = b"a\tb\n";
        let mut terms = Interner::new();
        let err = read_tsv(&input[..], &mut terms).unwrap_err();
        assert!(matches!(err, KbError::Parse { line: 1, .. }));
    }

    #[test]
    fn tsv_rejects_bad_escape() {
        let input = b"a\\q\tb\tc\n";
        let mut terms = Interner::new();
        assert!(read_tsv(&input[..], &mut terms).is_err());
    }

    #[test]
    fn ntriples_rejects_missing_dot() {
        let input = b"<a> <b> <c>\n";
        let mut terms = Interner::new();
        assert!(read_ntriples(&input[..], &mut terms).is_err());
    }

    #[test]
    fn ntriples_rejects_trailing_garbage() {
        let input = b"<a> <b> <c> <d> .\n";
        let mut terms = Interner::new();
        assert!(read_ntriples(&input[..], &mut terms).is_err());
    }

    #[test]
    fn ntriples_handles_crlf_and_comments() {
        let input = b"# c\r\n<a> <b> <c> .\r\n";
        let mut terms = Interner::new();
        let facts = read_ntriples(&input[..], &mut terms).unwrap();
        assert_eq!(facts.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let input = b"<a> <b> <c> .\nbroken line\n";
        let mut terms = Interner::new();
        match read_ntriples(&input[..], &mut terms).unwrap_err() {
            KbError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
