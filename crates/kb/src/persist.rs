//! Binary persistence of a knowledge base together with its interner.
//!
//! The text formats in [`crate::io`] are diff-friendly but decode-heavy; for
//! the multi-million-fact knowledge bases the evaluation loads repeatedly a
//! compact binary snapshot is an order of magnitude faster. Layout (all
//! integers little-endian):
//!
//! ```text
//! magic "MKB1"
//! u32 string_count      then per string: u32 byte_len, bytes (UTF-8)
//! u32 fact_count        then per fact:   u32 s, u32 p, u32 o (symbol ids)
//! ```
//!
//! Facts reference the snapshot's own string table by index, so a snapshot
//! is self-contained; loading returns a fresh `(Interner, KnowledgeBase)`.

use crate::error::KbError;
use crate::fact::Fact;
use crate::interner::{Interner, Symbol};
use crate::store::KnowledgeBase;
use bytes::{Buf, BufMut, BytesMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"MKB1";

/// Serialises `kb` (and the interner strings its symbols reference) to `w`.
pub fn save<W: Write>(mut w: W, terms: &Interner, kb: &KnowledgeBase) -> Result<(), KbError> {
    let mut buf = BytesMut::with_capacity(64 + terms.len() * 16 + kb.len() * 12);
    buf.put_slice(MAGIC);
    buf.put_u32_le(u32::try_from(terms.len()).expect("too many strings"));
    for (_, s) in terms.iter() {
        buf.put_u32_le(u32::try_from(s.len()).expect("string too long"));
        buf.put_slice(s.as_bytes());
    }
    buf.put_u32_le(u32::try_from(kb.len()).expect("too many facts"));
    for f in kb.iter() {
        buf.put_u32_le(f.subject.index() as u32);
        buf.put_u32_le(f.predicate.index() as u32);
        buf.put_u32_le(f.object.index() as u32);
    }
    w.write_all(&buf)?;
    Ok(())
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), KbError> {
    if buf.remaining() < n {
        return Err(KbError::Parse {
            line: 0,
            message: format!("truncated snapshot while reading {what}"),
        });
    }
    Ok(())
}

/// Loads a snapshot produced by [`save`].
pub fn load<R: Read>(mut r: R) -> Result<(Interner, KnowledgeBase), KbError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];

    need(&buf, 4, "magic")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(KbError::Parse {
            line: 0,
            message: format!("bad magic {magic:?}, expected MKB1"),
        });
    }

    need(&buf, 4, "string count")?;
    let n_strings = buf.get_u32_le() as usize;
    let mut terms = Interner::with_capacity(n_strings);
    for i in 0..n_strings {
        need(&buf, 4, "string length")?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len, "string bytes")?;
        let s = std::str::from_utf8(&buf[..len]).map_err(|_| KbError::Parse {
            line: 0,
            message: format!("string {i} is not valid UTF-8"),
        })?;
        let sym = terms.intern(s);
        if sym.index() != i {
            return Err(KbError::Parse {
                line: 0,
                message: format!("duplicate string {i} in snapshot"),
            });
        }
        buf.advance(len);
    }

    need(&buf, 4, "fact count")?;
    let n_facts = buf.get_u32_le() as usize;
    let mut kb = KnowledgeBase::new();
    for _ in 0..n_facts {
        need(&buf, 12, "fact")?;
        let (s, p, o) = (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le());
        for id in [s, p, o] {
            if id as usize >= n_strings {
                return Err(KbError::Parse {
                    line: 0,
                    message: format!("fact references unknown string {id}"),
                });
            }
        }
        kb.insert(Fact::new(
            Symbol::from_index(s as usize),
            Symbol::from_index(p as usize),
            Symbol::from_index(o as usize),
        ));
    }
    if buf.has_remaining() {
        return Err(KbError::Parse {
            line: 0,
            message: format!("{} trailing bytes after snapshot", buf.remaining()),
        });
    }
    Ok((terms, kb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Interner, KnowledgeBase) {
        let mut t = Interner::new();
        let kb = [
            ("atlas", "category", "rocket_family"),
            ("atlas", "sponsor", "NASA"),
            ("ünïcode ✓", "emoji", "🚀"),
        ]
        .iter()
        .map(|&(s, p, o)| Fact::intern(&mut t, s, p, o))
        .collect();
        (t, kb)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (terms, kb) = sample();
        let mut buf = Vec::new();
        save(&mut buf, &terms, &kb).unwrap();
        let (terms2, kb2) = load(&buf[..]).unwrap();
        assert_eq!(kb2.len(), kb.len());
        for f in kb.iter() {
            // Cross-check by string values.
            let s = terms.resolve(f.subject);
            let p = terms.resolve(f.predicate);
            let o = terms.resolve(f.object);
            let f2 = Fact::new(
                terms2.get(s).expect("subject present"),
                terms2.get(p).expect("predicate present"),
                terms2.get(o).expect("object present"),
            );
            assert!(kb2.contains(&f2), "({s}, {p}, {o}) survived");
        }
    }

    #[test]
    fn empty_kb_round_trips() {
        let mut buf = Vec::new();
        save(&mut buf, &Interner::new(), &KnowledgeBase::new()).unwrap();
        let (t, kb) = load(&buf[..]).unwrap();
        assert!(t.is_empty());
        assert!(kb.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load(&b"NOPE\0\0\0\0"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let (terms, kb) = sample();
        let mut buf = Vec::new();
        save(&mut buf, &terms, &kb).unwrap();
        // Any strict prefix must fail cleanly, never panic.
        for cut in 0..buf.len() {
            assert!(load(&buf[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let (terms, kb) = sample();
        let mut buf = Vec::new();
        save(&mut buf, &terms, &kb).unwrap();
        buf.push(0xFF);
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn rejects_dangling_symbol_reference() {
        // Hand-craft: one string, one fact referencing string 7.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MKB1");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'x');
        buf.extend_from_slice(&1u32.to_le_bytes());
        for id in [0u32, 7, 0] {
            buf.extend_from_slice(&id.to_le_bytes());
        }
        let err = load(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("unknown string"));
    }
}
