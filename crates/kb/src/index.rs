//! Triple permutation indexes.
//!
//! A [`TripleIndex`] stores each fact in three `BTreeSet` permutations —
//! SPO, POS, and OSP — so that every access pattern MIDAS needs is a
//! contiguous range scan:
//!
//! * *all facts of an entity* → SPO prefix scan on `s`,
//! * *all entities with property `(p, o)`* → POS prefix scan on `(p, o)`,
//! * *all values of a predicate* → POS prefix scan on `p`,
//! * *all facts mentioning an object* → OSP prefix scan on `o`.

use crate::fact::Fact;
use crate::interner::Symbol;
use std::collections::BTreeSet;
use std::ops::Bound;

/// Smallest possible symbol, used as an inclusive range start.
fn sym_min() -> Symbol {
    Symbol::from_index(0)
}

/// Largest possible symbol, used as an inclusive range end.
fn sym_max() -> Symbol {
    Symbol::from_index(u32::MAX as usize)
}

/// A three-permutation triple index.
#[derive(Debug, Default, Clone)]
pub struct TripleIndex {
    spo: BTreeSet<(Symbol, Symbol, Symbol)>,
    pos: BTreeSet<(Symbol, Symbol, Symbol)>,
    osp: BTreeSet<(Symbol, Symbol, Symbol)>,
}

impl TripleIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if it was not present before.
    pub fn insert(&mut self, f: Fact) -> bool {
        let fresh = self.spo.insert((f.subject, f.predicate, f.object));
        if fresh {
            self.pos.insert((f.predicate, f.object, f.subject));
            self.osp.insert((f.object, f.subject, f.predicate));
        }
        fresh
    }

    /// Removes a fact; returns `true` if it was present.
    pub fn remove(&mut self, f: &Fact) -> bool {
        let had = self.spo.remove(&(f.subject, f.predicate, f.object));
        if had {
            self.pos.remove(&(f.predicate, f.object, f.subject));
            self.osp.remove(&(f.object, f.subject, f.predicate));
        }
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, f: &Fact) -> bool {
        self.spo.contains(&(f.subject, f.predicate, f.object))
    }

    /// Number of distinct facts.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterates all facts in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.spo.iter().map(|&(s, p, o)| Fact::new(s, p, o))
    }

    /// All facts whose subject is `s`.
    pub fn facts_for_subject(&self, s: Symbol) -> impl Iterator<Item = Fact> + '_ {
        self.spo
            .range((
                Bound::Included((s, sym_min(), sym_min())),
                Bound::Included((s, sym_max(), sym_max())),
            ))
            .map(|&(s, p, o)| Fact::new(s, p, o))
    }

    /// All facts whose predicate is `p`, in `(object, subject)` order.
    pub fn facts_for_predicate(&self, p: Symbol) -> impl Iterator<Item = Fact> + '_ {
        self.pos
            .range((
                Bound::Included((p, sym_min(), sym_min())),
                Bound::Included((p, sym_max(), sym_max())),
            ))
            .map(|&(p, o, s)| Fact::new(s, p, o))
    }

    /// All subjects that carry property `(p, o)` — the extent of a MIDAS
    /// property (Definition 4).
    pub fn subjects_with_property(
        &self,
        p: Symbol,
        o: Symbol,
    ) -> impl Iterator<Item = Symbol> + '_ {
        self.pos
            .range((
                Bound::Included((p, o, sym_min())),
                Bound::Included((p, o, sym_max())),
            ))
            .map(|&(_, _, s)| s)
    }

    /// All facts whose object is `o`.
    pub fn facts_for_object(&self, o: Symbol) -> impl Iterator<Item = Fact> + '_ {
        self.osp
            .range((
                Bound::Included((o, sym_min(), sym_min())),
                Bound::Included((o, sym_max(), sym_max())),
            ))
            .map(|&(o, s, p)| Fact::new(s, p, o))
    }

    /// Distinct subjects, in symbol order.
    pub fn subjects(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut last: Option<Symbol> = None;
        for &(s, _, _) in &self.spo {
            if last != Some(s) {
                out.push(s);
                last = Some(s);
            }
        }
        out
    }

    /// Distinct predicates, in symbol order.
    pub fn predicates(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut last: Option<Symbol> = None;
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                out.push(p);
                last = Some(p);
            }
        }
        out
    }

    /// Number of distinct `(subject, predicate)` pairs — the `m` of the
    /// paper's Proposition 15 complexity bound.
    pub fn distinct_subject_predicate_pairs(&self) -> usize {
        let mut count = 0;
        let mut last: Option<(Symbol, Symbol)> = None;
        for &(s, p, _) in &self.spo {
            if last != Some((s, p)) {
                count += 1;
                last = Some((s, p));
            }
        }
        count
    }
}

impl FromIterator<Fact> for TripleIndex {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        let mut idx = TripleIndex::new();
        for f in iter {
            idx.insert(f);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn sample() -> (Interner, TripleIndex) {
        let mut t = Interner::new();
        let rows = [
            ("mercury", "category", "space_program"),
            ("mercury", "started", "1959"),
            ("mercury", "sponsor", "NASA"),
            ("gemini", "category", "space_program"),
            ("gemini", "sponsor", "NASA"),
            ("atlas", "category", "rocket_family"),
            ("atlas", "sponsor", "NASA"),
            ("atlas", "started", "1957"),
        ];
        let idx = rows
            .iter()
            .map(|(s, p, o)| Fact::intern(&mut t, s, p, o))
            .collect();
        (t, idx)
    }

    #[test]
    fn insert_is_set_semantics() {
        let (mut t, mut idx) = sample();
        let dup = Fact::intern(&mut t, "mercury", "sponsor", "NASA");
        assert!(!idx.insert(dup));
        assert_eq!(idx.len(), 8);
    }

    #[test]
    fn remove_clears_all_permutations() {
        let (mut t, mut idx) = sample();
        let f = Fact::intern(&mut t, "atlas", "started", "1957");
        assert!(idx.remove(&f));
        assert!(!idx.contains(&f));
        assert!(!idx.remove(&f));
        assert!(idx.facts_for_subject(f.subject).all(|g| g != f));
        assert!(idx.facts_for_predicate(f.predicate).all(|g| g != f));
        assert!(idx.facts_for_object(f.object).all(|g| g != f));
    }

    #[test]
    fn subject_scan_returns_exactly_entity_facts() {
        let (mut t, idx) = sample();
        let mercury = t.intern("mercury");
        let facts: Vec<Fact> = idx.facts_for_subject(mercury).collect();
        assert_eq!(facts.len(), 3);
        assert!(facts.iter().all(|f| f.subject == mercury));
    }

    #[test]
    fn property_extent_matches_definition_4() {
        let (mut t, idx) = sample();
        let category = t.intern("category");
        let space = t.intern("space_program");
        let subs: Vec<Symbol> = idx.subjects_with_property(category, space).collect();
        assert_eq!(subs.len(), 2);
        let names: Vec<&str> = subs.iter().map(|&s| t.resolve(s)).collect();
        assert!(names.contains(&"mercury") && names.contains(&"gemini"));
    }

    #[test]
    fn predicate_scan_covers_all_sources() {
        let (mut t, idx) = sample();
        let sponsor = t.intern("sponsor");
        assert_eq!(idx.facts_for_predicate(sponsor).count(), 3);
    }

    #[test]
    fn object_scan_finds_all_mentions() {
        let (mut t, idx) = sample();
        let nasa = t.intern("NASA");
        assert_eq!(idx.facts_for_object(nasa).count(), 3);
    }

    #[test]
    fn distinct_enumerations() {
        let (_, idx) = sample();
        assert_eq!(idx.subjects().len(), 3);
        assert_eq!(idx.predicates().len(), 3);
        assert_eq!(idx.distinct_subject_predicate_pairs(), 8);
    }

    #[test]
    fn iter_is_sorted_spo() {
        let (_, idx) = sample();
        let facts: Vec<Fact> = idx.iter().collect();
        let mut sorted = facts.clone();
        sorted.sort();
        assert_eq!(facts, sorted);
    }

    #[test]
    fn empty_index_behaviour() {
        let idx = TripleIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.subjects().len(), 0);
        assert_eq!(idx.predicates().len(), 0);
        assert_eq!(idx.distinct_subject_predicate_pairs(), 0);
    }
}
