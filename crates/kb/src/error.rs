//! Error types for the knowledge-base substrate.

use std::fmt;
use std::io;

/// Errors produced while loading or saving knowledge-base files.
#[derive(Debug)]
pub enum KbError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line in a triple file.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Io(e) => write!(f, "I/O error: {e}"),
            KbError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for KbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbError::Io(e) => Some(e),
            KbError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for KbError {
    fn from(e: io::Error) -> Self {
        KbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_number() {
        let e = KbError::Parse {
            line: 17,
            message: "expected three tab-separated fields".into(),
        };
        let s = e.to_string();
        assert!(s.contains("17"));
        assert!(s.contains("three tab-separated"));
    }

    #[test]
    fn io_errors_convert() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "missing");
        let e: KbError = io_err.into();
        assert!(matches!(e, KbError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }
}
