//! Deterministic kill-anywhere crash hook for durability testing.
//!
//! Crash-consistency claims ("a `kill -9` at any point leaves the cache
//! loadable") are only testable if the process can be made to die at
//! *chosen, repeatable* points. This module provides that: named crash
//! sites are compiled into the snapshot write path (see
//! [`crate::snapshot::write_bytes_atomic`]), and a plan — `<site>@<n>`,
//! parsed from the `MIDAS_CRASHPOINT` environment variable — aborts the
//! process on the `n`-th time the named site is reached. `abort` (not
//! `panic!`) so no destructor, buffer flush, or cleanup handler softens the
//! crash: the test observes exactly what a power cut at that instant would
//! leave on disk.
//!
//! Modeled on the fault-injection harness (`midas-core::faultinject`): a
//! relaxed-atomic fast path keeps the hooks free when disarmed (the only
//! production state), and plans install either programmatically
//! ([`install`]) or from the environment (read once, on first hit). Sites
//! are named `<prefix>.<stage>` — e.g. `snap.tmp.partial` is "the corpus
//! snapshot's temp file is half-written" — so one plan string pins one
//! instant in one write path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};

/// One armed crash site: abort on the `remaining`-th future hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// Full site name, `<prefix>.<stage>`.
    pub site: String,
    /// Hits left before the abort fires (counts down).
    pub remaining: u64,
}

impl CrashPlan {
    /// Parses a `<site>@<n>` spec (e.g. `snap.renamed@2`). `n` must be a
    /// positive hit count; the abort fires on the `n`-th hit of `site`.
    pub fn parse(spec: &str) -> Result<CrashPlan, String> {
        let (site, n) = spec
            .rsplit_once('@')
            .ok_or_else(|| format!("crashpoint spec '{spec}' missing '@' (site@n)"))?;
        let remaining: u64 = n
            .trim()
            .parse()
            .map_err(|_| format!("invalid hit count '{n}' in crashpoint spec '{spec}'"))?;
        if site.trim().is_empty() || remaining == 0 {
            return Err(format!(
                "crashpoint spec '{spec}' needs a non-empty site and n >= 1"
            ));
        }
        Ok(CrashPlan {
            site: site.trim().to_string(),
            remaining,
        })
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<CrashPlan>> = Mutex::new(None);
static ENV_ONCE: Once = Once::new();

/// Installs `plan` process-wide, replacing any previous plan.
pub fn install(plan: CrashPlan) {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    ARMED.store(true, Ordering::Release);
}

/// Removes the installed plan; every hook returns to its no-op fast path.
pub fn clear() {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = None;
    ARMED.store(false, Ordering::Release);
}

/// Whether a plan is currently installed.
pub fn armed() -> bool {
    ensure_env_loaded();
    ARMED.load(Ordering::Acquire)
}

/// Loads the plan from `MIDAS_CRASHPOINT` exactly once per process. A
/// malformed spec is reported and ignored — a test that relies on it will
/// then fail loudly because the expected abort never happens.
fn ensure_env_loaded() {
    ENV_ONCE.call_once(|| {
        if let Ok(spec) = std::env::var("MIDAS_CRASHPOINT") {
            match CrashPlan::parse(&spec) {
                Ok(plan) => install(plan),
                Err(e) => eprintln!("warning: MIDAS_CRASHPOINT ignored: {e}"),
            }
        }
    });
}

/// Crash hook: aborts the process if the installed plan targets
/// `<prefix>.<stage>` and this is its `n`-th hit. Disarmed cost is one
/// atomic load; nothing is even formatted.
pub fn hit(prefix: &str, stage: &str) {
    if !armed() {
        return;
    }
    let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let Some(plan) = guard.as_mut() else { return };
    let matches = plan
        .site
        .strip_prefix(prefix)
        .and_then(|rest| rest.strip_prefix('.'))
        .is_some_and(|rest| rest == stage);
    if !matches {
        return;
    }
    plan.remaining -= 1;
    if plan.remaining == 0 {
        // Flush the reason to stderr (unbuffered) and die hard: abort skips
        // atexit handlers, Drop impls, and stdio flushing on purpose.
        eprintln!("crashpoint: aborting at {prefix}.{stage}");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests mutate process-global state; they must not run while any
    // other test arms a plan. The only other user is the forked-CLI crash
    // harness, which arms plans in child processes only.

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        assert_eq!(
            CrashPlan::parse("snap.tmp.partial@3").unwrap(),
            CrashPlan {
                site: "snap.tmp.partial".into(),
                remaining: 3
            }
        );
        assert!(CrashPlan::parse("no-at-sign").is_err());
        assert!(CrashPlan::parse("site@zero").is_err());
        assert!(CrashPlan::parse("site@0").is_err());
        assert!(CrashPlan::parse("@1").is_err());
    }

    #[test]
    fn non_matching_hits_never_consume_the_plan() {
        install(CrashPlan {
            site: "snap.renamed".into(),
            remaining: 1,
        });
        // Prefix/stage must match exactly at the '.' boundary.
        hit("snap", "tmp.partial");
        hit("snapshot", "renamed");
        hit("snap.renamed", "extra");
        let remaining = PLAN
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|p| p.remaining);
        assert_eq!(remaining, Some(1), "only snap.renamed may count down");
        clear();
        assert!(!ARMED.load(Ordering::Acquire));
        hit("snap", "renamed"); // disarmed: no-op, certainly no abort
    }

    #[test]
    fn countdown_decrements_without_firing_early() {
        install(CrashPlan {
            site: "unit.stage".into(),
            remaining: 3,
        });
        hit("unit", "stage");
        hit("unit", "stage");
        // Two of three hits consumed; the third would abort, so stop here.
        let remaining = PLAN
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|p| p.remaining);
        assert_eq!(remaining, Some(1));
        clear();
    }
}
