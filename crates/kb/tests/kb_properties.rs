//! Property-based tests of the knowledge-base substrate.

use midas_kb::{ConjunctiveQuery, Fact, Interner, KnowledgeBase};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// Interning any set of strings round-trips and is injective.
    #[test]
    fn interner_round_trip(words in proptest::collection::vec(".{0,24}", 0..60)) {
        let mut interner = Interner::new();
        let syms: Vec<_> = words.iter().map(|w| interner.intern(w)).collect();
        for (w, &s) in words.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(s), w.as_str());
        }
        // Distinct strings get distinct symbols.
        let distinct_words: BTreeSet<&str> = words.iter().map(String::as_str).collect();
        let distinct_syms: BTreeSet<_> = syms.iter().copied().collect();
        prop_assert_eq!(distinct_words.len(), distinct_syms.len());
        prop_assert_eq!(interner.len(), distinct_words.len());
    }

    /// The three permutation indexes always agree with a reference set.
    #[test]
    fn index_permutations_agree(triples in proptest::collection::vec(any::<(u8, u8, u8)>(), 0..150)) {
        let mut terms = Interner::new();
        let mut kb = KnowledgeBase::new();
        let mut reference: BTreeSet<Fact> = BTreeSet::new();
        for &(s, p, o) in &triples {
            let f = Fact::intern(&mut terms, &format!("s{}", s % 16), &format!("p{}", p % 8), &format!("o{}", o % 16));
            kb.insert(f);
            reference.insert(f);
        }
        prop_assert_eq!(kb.len(), reference.len());
        // Subject scans cover exactly the reference facts.
        let via_subjects: BTreeSet<Fact> = kb
            .subjects()
            .into_iter()
            .flat_map(|s| kb.facts_for_subject(s).collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(&via_subjects, &reference);
        // Predicate scans too.
        let via_preds: BTreeSet<Fact> = kb
            .predicates()
            .into_iter()
            .flat_map(|p| kb.index().facts_for_predicate(p).collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(&via_preds, &reference);
    }

    /// Conjunctive queries match a naive per-entity filter.
    #[test]
    fn query_matches_naive_filter(triples in proptest::collection::vec(any::<(u8, u8, u8)>(), 1..120), qp in 0u8..8, qo in 0u8..16) {
        let mut terms = Interner::new();
        let mut kb = KnowledgeBase::new();
        for &(s, p, o) in &triples {
            kb.insert(Fact::intern(&mut terms, &format!("s{}", s % 16), &format!("p{}", p % 8), &format!("o{}", o % 16)));
        }
        let pred = terms.intern(&format!("p{}", qp % 8));
        let val = terms.intern(&format!("o{}", qo % 16));
        let q = ConjunctiveQuery::new().with_property(pred, val);
        let fast: BTreeSet<_> = q.select(&kb).into_iter().collect();
        let slow: BTreeSet<_> = kb
            .subjects()
            .into_iter()
            .filter(|&s| {
                kb.facts_for_subject(s)
                    .any(|f| f.predicate == pred && f.object == val)
            })
            .collect();
        prop_assert_eq!(fast, slow);
    }

    /// Binary snapshots round-trip arbitrary knowledge bases.
    #[test]
    fn persist_round_trip(triples in proptest::collection::vec(any::<(u8, u8, u8)>(), 0..100)) {
        let mut terms = Interner::new();
        let mut kb = KnowledgeBase::new();
        for &(s, p, o) in &triples {
            kb.insert(Fact::intern(&mut terms, &format!("س{s}"), &format!("p{p}"), &format!("✓{o}")));
        }
        let mut buf = Vec::new();
        midas_kb::persist::save(&mut buf, &terms, &kb).unwrap();
        let (terms2, kb2) = midas_kb::persist::load(&buf[..]).unwrap();
        prop_assert_eq!(kb2.len(), kb.len());
        for f in kb.iter() {
            let f2 = Fact::new(
                terms2.get(terms.resolve(f.subject)).unwrap(),
                terms2.get(terms.resolve(f.predicate)).unwrap(),
                terms2.get(terms.resolve(f.object)).unwrap(),
            );
            prop_assert!(kb2.contains(&f2));
        }
    }

    /// TSV IO round-trips arbitrary (printable) terms.
    #[test]
    fn tsv_round_trip(rows in proptest::collection::vec(("[ -~]{1,12}", "[ -~]{1,12}", "[ -~]{1,12}"), 0..40)) {
        let mut terms = Interner::new();
        let facts: Vec<Fact> = rows
            .iter()
            .map(|(s, p, o)| Fact::intern(&mut terms, s, p, o))
            .collect();
        let mut buf = Vec::new();
        midas_kb::io::write_tsv(&mut buf, &terms, facts.iter().copied()).unwrap();
        let mut terms2 = Interner::new();
        let back = midas_kb::io::read_tsv(&buf[..], &mut terms2).unwrap();
        prop_assert_eq!(back.len(), facts.len());
        for (a, b) in facts.iter().zip(&back) {
            prop_assert_eq!(terms.resolve(a.subject), terms2.resolve(b.subject));
            prop_assert_eq!(terms.resolve(a.predicate), terms2.resolve(b.predicate));
            prop_assert_eq!(terms.resolve(a.object), terms2.resolve(b.object));
        }
    }
}
