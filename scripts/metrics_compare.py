#!/usr/bin/env python3
"""Compare per-run telemetry metric reports (METRICS_PR<N>.json) across PRs.

Reads every METRICS_PR<N>.json at the repo root — each a single
``midas.metrics/v1`` document as written by ``--metrics-json`` (the CLI) or
``augment_rounds --metrics-json`` (the bench probe) — and diffs the two most
recent ones.

Counters are work totals, not wall-clock, so they are machine-independent:
a changed value means the code path genuinely did a different amount of
work. The comparison is therefore two-sided — a counter that *drops* to
zero usually means instrumented work silently stopped happening, which is
as much a bug as runaway growth. Histograms are compared on sample counts
only; their nanosecond sums are machine-speed dependent and are printed for
reference, never gated.

Exit status is non-zero when any counter present in both reports moved by
more than the threshold (default 25%) in either direction, or vanished
entirely. Counters appearing only on one side are informational — every PR
adds instrumentation.

Usage:
    scripts/metrics_compare.py [--threshold 0.25]

Stdlib only; no third-party imports.
"""

import argparse
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "midas.metrics/v1"


def pr_number(path):
    m = re.fullmatch(r"METRICS_PR(\d+)\.json", path.name)
    return int(m.group(1)) if m else None


def load_report(path):
    """(counters dict, histograms dict) from one metrics document."""
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        sys.exit(f"{path.name}: not valid JSON: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"{path.name}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    return doc.get("counters", {}), doc.get("histograms", {})


def fmt(v):
    return f"{v:,}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed counter drift, as a fraction (default 0.25)")
    args = ap.parse_args()

    files = sorted(
        (p for p in ROOT.glob("METRICS_PR*.json") if pr_number(p) is not None),
        key=pr_number,
    )
    if len(files) < 2:
        sys.exit("need at least two METRICS_PR*.json files to compare")
    prev, latest = files[-2], files[-1]
    prev_counters, prev_hists = load_report(prev)
    counters, hists = load_report(latest)

    drifted = []
    print(f"{prev.name} -> {latest.name} (threshold {args.threshold:.0%}):")
    for name in sorted(set(prev_counters) & set(counters)):
        before, after = prev_counters[name], counters[name]
        if before == after == 0:
            continue
        if before == 0:
            delta, shown = float("inf"), "new work"
        else:
            delta = abs(after - before) / before
            shown = f"{(after - before) / before:+.1%}"
        flag = ""
        if delta > args.threshold or (before > 0 and after == 0):
            drifted.append((name, shown))
            flag = "  DRIFT"
        print(f"  {name:44s} {fmt(before):>16s} -> {fmt(after):>16s}  {shown:>10s}{flag}")
    for name in sorted(set(counters) - set(prev_counters)):
        print(f"  {name:44s} {'—':>16s} -> {fmt(counters[name]):>16s}   new")
    for name in sorted(set(prev_counters) - set(counters)):
        drifted.append((name, "vanished"))
        print(f"  {name:44s} {fmt(prev_counters[name]):>16s} -> {'—':>16s}  DRIFT (vanished)")

    shared_hists = sorted(set(prev_hists) & set(hists))
    if shared_hists:
        print("histogram sample counts (informational; sums are machine-speed):")
        for name in shared_hists:
            b, a = prev_hists[name], hists[name]
            print(f"  {name:44s} {fmt(b.get('count', 0)):>16s} -> {fmt(a.get('count', 0)):>16s}"
                  f"   sum {fmt(b.get('sum', 0))} -> {fmt(a.get('sum', 0))}")

    if drifted:
        print(f"\nFAILED: {len(drifted)} counter(s) drifted beyond "
              f"{args.threshold:.0%}: {', '.join(n for n, _ in drifted)}",
              file=sys.stderr)
        return 1
    print("\nOK: no counter drift beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
