#!/usr/bin/env bash
# Pre-merge check gauntlet: formatting, lints as errors, and the full test
# suite. Entirely offline. Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== snapshot subsystem tests =="
cargo test -q --offline -p midas-kb snapshot
cargo test -q --offline -p midas-core snapshot
cargo test -q --offline -p midas-cli snapshot
cargo test -q --offline --test snapshot_roundtrip

echo "== cargo test =="
cargo test -q --offline

echo "All checks passed."
