#!/usr/bin/env bash
# Pre-merge check gauntlet: formatting, lints as errors, and the full test
# suite. Entirely offline. Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== snapshot subsystem tests =="
cargo test -q --offline -p midas-kb snapshot
cargo test -q --offline -p midas-core snapshot
cargo test -q --offline -p midas-cli snapshot
cargo test -q --offline --test snapshot_roundtrip

echo "== crash harness (kill-anywhere + concurrent cache) =="
cargo test -q --offline -p midas-cli --test crash_harness
cargo test -q --offline -p midas-cli --test concurrent_cache

# Kernel dispatch lane: the differential suite plus both report-equivalence
# suites under each MIDAS_KERNEL setting — swapping the kernel table must
# never change a report byte.
echo "== kernel dispatch (MIDAS_KERNEL=scalar and =auto) =="
for kernel in scalar auto; do
    echo "-- MIDAS_KERNEL=$kernel --"
    MIDAS_KERNEL="$kernel" cargo test -q --offline -p midas-core kernels
    MIDAS_KERNEL="$kernel" cargo test -q --offline --test kernel_differential
    MIDAS_KERNEL="$kernel" cargo test -q --offline --test streaming_equivalence
    MIDAS_KERNEL="$kernel" cargo test -q --offline --test incremental_equivalence
done

# Warm-hierarchy lane: retained-hierarchy patching must be a pure
# optimisation. Disabling it through the escape hatch forces every dirty
# leaf to rebuild its hierarchy cold and must not change a report byte in
# either equivalence suite.
echo "== warm-hierarchy escape hatch (MIDAS_NO_WARM_HIERARCHY=1) =="
MIDAS_NO_WARM_HIERARCHY=1 cargo test -q --offline --test incremental_equivalence
MIDAS_NO_WARM_HIERARCHY=1 cargo test -q --offline --test streaming_equivalence

# Telemetry lane: a live metrics registry and span trace sink must never
# change a report byte. Both equivalence suites re-run with telemetry
# forced on and every span mirrored to a JSONL file, which must then parse
# as one well-formed span event per line (the suites flush the sink).
echo "== telemetry lane (MIDAS_TELEMETRY=1, MIDAS_TRACE=spans:FILE) =="
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
MIDAS_TELEMETRY=1 MIDAS_TRACE="spans:$TRACE_DIR/streaming.jsonl" \
    cargo test -q --offline --test streaming_equivalence
MIDAS_TELEMETRY=1 MIDAS_TRACE="spans:$TRACE_DIR/incremental.jsonl" \
    cargo test -q --offline --test incremental_equivalence
python3 - "$TRACE_DIR/streaming.jsonl" "$TRACE_DIR/incremental.jsonl" <<'EOF'
import json, sys
total = 0
for path in sys.argv[1:]:
    for line in open(path):
        evt = json.loads(line)
        assert evt["span"] and evt["end_ns"] >= evt["start_ns"], evt
        total += 1
assert total > 0, "no span events captured"
print(f"trace OK: {total} span events across {len(sys.argv) - 1} file(s)")
EOF

echo "== cargo test =="
cargo test -q --offline

echo "All checks passed."
