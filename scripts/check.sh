#!/usr/bin/env bash
# Pre-merge check gauntlet: formatting, lints as errors, and the full test
# suite. Entirely offline. Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== snapshot subsystem tests =="
cargo test -q --offline -p midas-kb snapshot
cargo test -q --offline -p midas-core snapshot
cargo test -q --offline -p midas-cli snapshot
cargo test -q --offline --test snapshot_roundtrip

echo "== crash harness (kill-anywhere + concurrent cache) =="
cargo test -q --offline -p midas-cli --test crash_harness
cargo test -q --offline -p midas-cli --test concurrent_cache

# Kernel dispatch lane: the differential suite plus both report-equivalence
# suites under each MIDAS_KERNEL setting — swapping the kernel table must
# never change a report byte.
echo "== kernel dispatch (MIDAS_KERNEL=scalar and =auto) =="
for kernel in scalar auto; do
    echo "-- MIDAS_KERNEL=$kernel --"
    MIDAS_KERNEL="$kernel" cargo test -q --offline -p midas-core kernels
    MIDAS_KERNEL="$kernel" cargo test -q --offline --test kernel_differential
    MIDAS_KERNEL="$kernel" cargo test -q --offline --test streaming_equivalence
    MIDAS_KERNEL="$kernel" cargo test -q --offline --test incremental_equivalence
done

# Warm-hierarchy lane: retained-hierarchy patching must be a pure
# optimisation. Disabling it through the escape hatch forces every dirty
# leaf to rebuild its hierarchy cold and must not change a report byte in
# either equivalence suite.
echo "== warm-hierarchy escape hatch (MIDAS_NO_WARM_HIERARCHY=1) =="
MIDAS_NO_WARM_HIERARCHY=1 cargo test -q --offline --test incremental_equivalence
MIDAS_NO_WARM_HIERARCHY=1 cargo test -q --offline --test streaming_equivalence

echo "== cargo test =="
cargo test -q --offline

echo "All checks passed."
