#!/usr/bin/env python3
"""Compare hot-path bench medians across PRs and refresh EXPERIMENTS.md.

Reads every BENCH_PR<N>.json at the repo root (one JSON object per line, as
appended by the criterion shim and the probe binaries). Entries carrying a
``median_ns`` field are microbenches and participate in the comparison;
probe lines (peak RSS, augmentation rounds, snapshot cold/warm) have their
own schemas and are skipped here — their gates live in bench_smoke.sh.

Exit status is non-zero when any bench present in both of the two most
recent files regressed by more than the threshold (default 10%). With
``--write-table`` the PR-over-PR median table in EXPERIMENTS.md is
regenerated between the ``bench-table`` markers.

Usage:
    scripts/bench_compare.py [--threshold 0.10] [--write-table]

Stdlib only; no third-party imports.
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
EXPERIMENTS = ROOT / "EXPERIMENTS.md"
BEGIN_MARK = "<!-- bench-table:begin -->"
END_MARK = "<!-- bench-table:end -->"


def usable_calibration(value):
    """``value`` as a float if it can serve as a division reference —
    parseable, finite, and strictly positive — else None. Files from older
    PRs omit calib_ns entirely, and an interrupted run can leave a zero or
    mangled field; all of those must fall back to raw-median comparison
    instead of crashing or dividing by zero."""
    try:
        v = float(value)
    except (TypeError, ValueError):
        return None
    return v if math.isfinite(v) and v > 0 else None


def load_medians(path):
    """Bench name -> (median_ns, min_ns, max_ns, calib_ns|None) for
    microbench lines. ``calib_ns`` is the machine-speed reference the run
    measured alongside its samples (absent in files from older PRs)."""
    out = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if "median_ns" in row and "bench" in row:
            out[row["bench"]] = (
                float(row["median_ns"]),
                float(row.get("min_ns", row["median_ns"])),
                float(row.get("max_ns", row["median_ns"])),
                usable_calibration(row.get("calib_ns")),
            )
    return out


def comparable(entry_before, entry_after):
    """The pair of values to diff, calibration-normalised when possible.

    When both runs carry an in-run calibration measurement, medians are
    divided by it, cancelling machine-speed differences (CPU model,
    frequency scaling, noisy neighbours) so only genuine per-work cost
    changes remain. Without calibration on both sides the raw medians are
    compared, as before.
    """
    before, _, _, calib_b = entry_before
    after, _, _, calib_a = entry_after
    if calib_b and calib_a:
        return before / calib_b, after / calib_a, True
    return before, after, False


def pr_number(path):
    m = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
    return int(m.group(1)) if m else None


def fmt_ns(v):
    return f"{v:,.1f}" if v < 10_000 else f"{v:,.0f}"


def build_table(files, medians):
    """Markdown table: one column per PR, Δ first→last, first PR's spread."""
    first, last = files[0], files[-1]
    benches = [b for b in medians[first] if b in medians[last]]
    header = (
        ["bench"]
        + [f"PR {pr_number(f)} median" for f in files]
        + [f"Δ PR{pr_number(first)}→{pr_number(last)}", f"PR {pr_number(first)} min–max"]
    )
    lines = [
        "| " + " | ".join(header) + " |",
        "|---" + "|---:" * (len(header) - 1) + "|",
    ]
    for bench in benches:
        cells = [bench]
        for f in files:
            entry = medians[f].get(bench)
            cells.append(fmt_ns(entry[0]) if entry else "—")
        base, latest, _ = comparable(medians[first][bench], medians[last][bench])
        delta = (latest - base) / base * 100.0
        lo, hi = medians[first][bench][1], medians[first][bench][2]
        cells.append(f"{delta:+.1f}%")
        cells.append(f"{fmt_ns(lo)} – {fmt_ns(hi)}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def write_table(table):
    text = EXPERIMENTS.read_text()
    if BEGIN_MARK not in text or END_MARK not in text:
        sys.exit(f"markers {BEGIN_MARK} / {END_MARK} not found in {EXPERIMENTS}")
    pre, rest = text.split(BEGIN_MARK, 1)
    _, post = rest.split(END_MARK, 1)
    EXPERIMENTS.write_text(pre + BEGIN_MARK + "\n" + table + "\n" + END_MARK + post)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed median regression, as a fraction (default 0.10)")
    ap.add_argument("--write-table", action="store_true",
                    help="regenerate the PR-over-PR table in EXPERIMENTS.md")
    args = ap.parse_args()

    files = sorted(
        (p for p in ROOT.glob("BENCH_PR*.json") if pr_number(p) is not None),
        key=pr_number,
    )
    if len(files) < 2:
        sys.exit("need at least two BENCH_PR*.json files to compare")
    medians = {f: load_medians(f) for f in files}

    prev, latest = files[-2], files[-1]
    shared = sorted(set(medians[prev]) & set(medians[latest]))
    if not shared:
        sys.exit(f"no common benches between {prev.name} and {latest.name}")

    regressions = []
    print(f"{prev.name} -> {latest.name} (threshold {args.threshold:.0%}):")
    for bench in shared:
        raw_before = medians[prev][bench][0]
        raw_after = medians[latest][bench][0]
        before, after, normalised = comparable(medians[prev][bench],
                                               medians[latest][bench])
        delta = (after - before) / before
        flag = "  (calibrated)" if normalised else ""
        if delta > args.threshold:
            regressions.append((bench, delta))
            flag += "  REGRESSION"
        print(f"  {bench:40s} {fmt_ns(raw_before):>14s} -> {fmt_ns(raw_after):>14s}"
              f"  {delta:+7.1%}{flag}")

    if args.write_table:
        write_table(build_table(files, medians))
        print(f"updated table in {EXPERIMENTS.name} "
              f"({files[0].name} … {files[-1].name})")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"\nFAILED: {len(regressions)} hot-path bench(es) regressed "
              f"> {args.threshold:.0%} (worst: {worst[0]} {worst[1]:+.1%})",
              file=sys.stderr)
        return 1
    print("\nOK: no hot-path regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
