#!/usr/bin/env bash
# Bench smoke runner: exercises the hot-path criterion benches at reduced
# sample counts and records one JSON line per benchmark in BENCH_PR10.json
# at the repo root (appended by the in-repo criterion shim — see
# crates/shims/criterion; every line carries peak_rss_kb and calib_ns
# fields, the latter a machine-speed reference bench_compare.py divides
# medians by so host contention never reads as a code regression).
#
# Entirely offline: the workspace builds with `--offline` against the
# vendored/shimmed dependency set; no registry access and no new external
# dependencies are required (verify with `cargo tree --offline`).
#
# Usage: scripts/bench_smoke.sh [output.json] [samples]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
SAMPLES="${2:-10}"

# cargo runs bench binaries with the package directory as cwd, so anchor a
# relative output path to the repo root before exporting it.
case "$OUT" in
    /*) ;;
    *) OUT="$PWD/$OUT" ;;
esac

rm -f "$OUT"
export MIDAS_BENCH_JSON="$OUT"
export MIDAS_BENCH_SAMPLES="$SAMPLES"

for bench in hierarchy_build profit_eval interning; do
    echo "== $bench (samples=$SAMPLES) =="
    cargo bench --offline -p midas-bench --bench "$bench"
done

# Kernel dispatch: the dispatched SIMD table must beat the scalar kernels
# by >= 1.5x median on dense and_into+popcount at a >= 64k-entity universe.
# Only gated where the host actually has AVX2; elsewhere the dispatcher
# falls back to scalar and the ratio is ~1.
echo
echo "== kernel dispatch: scalar vs SIMD =="
cargo build --offline -q --release -p midas-bench --bin kernel_bench
KERNELS="$(./target/release/kernel_bench)"
printf '%s\n' "$KERNELS"
if grep -qc avx2 /proc/cpuinfo >/dev/null 2>&1; then
    KSPEED="$(printf '%s\n' "$KERNELS" \
        | sed -n 's|^kernels/speedup/and_into_popcount/65536: \([0-9]*\)\.\([0-9]*\)x.*|\1\2|p')"
    # KSPEED is the ratio in hundredths (e.g. 265 for 2.65x).
    if [ -z "$KSPEED" ] || [ "$KSPEED" -lt 150 ]; then
        echo "kernel smoke FAILED: dispatched kernels under 1.5x scalar at 64k (got ${KSPEED:-none}/100)" >&2
        exit 1
    fi
    echo "kernel smoke OK: dispatched kernels >= 1.5x scalar at 64k ($KSPEED/100)"
else
    echo "kernel smoke SKIPPED: host CPU lacks AVX2 (scalar fallback active)"
fi

# Peak-RSS comparison: the streaming window must reduce peak resident
# memory on a ≥200-source corpus. VmHWM is process-wide and monotone, so
# each configuration runs in its own process.
echo
echo "== peak RSS: --stream-window 8 vs unbounded =="
cargo build --offline -q --release -p midas-bench --bin peak_rss
WINDOWED="$(./target/release/peak_rss --stream-window 8)"
UNBOUNDED="$(./target/release/peak_rss)"
printf '%s\n%s\n' "$WINDOWED" "$UNBOUNDED" | tee -a "$OUT"
rss_of() { printf '%s' "$1" | sed -n 's/.*"peak_rss_kb":\([0-9]*\).*/\1/p'; }
W_KB="$(rss_of "$WINDOWED")"
U_KB="$(rss_of "$UNBOUNDED")"
if [ "$W_KB" -ge "$U_KB" ]; then
    echo "peak-RSS smoke FAILED: window 8 ($W_KB KiB) not below unbounded ($U_KB KiB)" >&2
    exit 1
fi
echo "peak-RSS smoke OK: window 8 = $W_KB KiB < unbounded = $U_KB KiB"

# Invalid-extent freeing: releasing invalidated hierarchy nodes' extents at
# level boundaries must not raise the peak over a run that retains them
# (same window, separate processes for the monotone VmHWM counter).
# VmHWM swings ±2-3% between identical runs on this allocator, which is
# larger than the freeing effect on this corpus, so the gate allows 3%
# slack — it still catches freeing genuinely costing memory.
echo
echo "== peak RSS: eager invalid-extent freeing vs --retain-invalid-extents =="
RETAINED="$(./target/release/peak_rss --stream-window 8 --retain-invalid-extents)"
printf '%s\n' "$RETAINED" | tee -a "$OUT"
# The windowed run above already measures the default (freeing) config.
F_KB="$W_KB"
R_KB="$(rss_of "$RETAINED")"
if [ "$F_KB" -gt $((R_KB + R_KB * 3 / 100)) ]; then
    echo "extent-free smoke FAILED: freeing ($F_KB KiB) above retaining ($R_KB KiB) beyond 3% noise" >&2
    exit 1
fi
echo "extent-free smoke OK: freeing = $F_KB KiB <= retaining = $R_KB KiB + 3% noise allowance"

# Incremental augmentation loop: every warm round replays the clean
# subtrees from the round cache AND patches the dirty leaves' retained
# hierarchies in place. The binary asserts bit-identical results across
# all three paths every round; the gate requires the warm path to beat
# the no-warm incremental path (PR 4 behaviour, forced in-process via
# MIDAS_NO_WARM_HIERARCHY) by >= 3x over the warm rounds, and to beat
# the from-scratch rebuild outright.
echo
echo "== augmentation loop: warm vs no-warm incremental vs rebuild =="
cargo build --offline -q --release -p midas-bench --bin augment_rounds
AUGMENT="$(./target/release/augment_rounds --threads 4)"
printf '%s\n' "$AUGMENT" | tee -a "$OUT"
ms_of() { printf '%s\n' "$AUGMENT" | grep warm_total | sed -n "s/.*\"$1_ms\":\([0-9]*\)\..*/\1/p"; }
WARM_MS="$(ms_of warm)"
FRESH_MS="$(ms_of rebuild)"
RATIO="$(printf '%s\n' "$AUGMENT" | grep warm_total \
    | sed -n 's/.*"warm_over_noreuse":\([0-9]*\)\..*/\1/p')"
if [ "$WARM_MS" -ge "$FRESH_MS" ]; then
    echo "augmentation smoke FAILED: warm incremental ($WARM_MS ms) not below rebuild ($FRESH_MS ms)" >&2
    exit 1
fi
if [ -z "$RATIO" ] || [ "$RATIO" -lt 3 ]; then
    echo "augmentation smoke FAILED: warm path only ${RATIO:-?}x over no-warm incremental (need >= 3x)" >&2
    exit 1
fi
echo "augmentation smoke OK: warm = $WARM_MS ms < rebuild = $FRESH_MS ms; ${RATIO}x over no-warm incremental"

# Telemetry overhead gate: with the metrics registry live (counters, span
# histograms, per-round reconciliation snapshots) the augmentation loop's
# from-scratch rebuild total must stay within 3% of the disabled run, plus
# a small absolute allowance because a single rebuild total is ~1.5s and
# host scheduling jitter alone exceeds 3% on loaded machines. Runs are
# interleaved and the gate compares best-of-3 per mode so one noisy rep
# cannot fail (or mask) the comparison. The last enabled rep also writes
# the per-run metrics report consumed by metrics_compare.py below.
echo
echo "== telemetry overhead: MIDAS_TELEMETRY=1 vs disabled (best of 3) =="
METRICS_OUT="$PWD/METRICS_PR10.json"
rebuild_total_of() { printf '%s\n' "$1" | grep warm_total | sed -n 's/.*"rebuild_ms":\([0-9]*\)\..*/\1/p'; }
BEST_OFF=""
BEST_ON=""
for rep in 1 2 3; do
    OFF_RUN="$(MIDAS_TELEMETRY=0 ./target/release/augment_rounds --threads 4)"
    ON_RUN="$(MIDAS_TELEMETRY=1 ./target/release/augment_rounds --threads 4 \
        --metrics-json "$METRICS_OUT" 2>/dev/null)"
    OFF_MS="$(rebuild_total_of "$OFF_RUN")"
    ON_MS="$(rebuild_total_of "$ON_RUN")"
    echo "  rep $rep: disabled = $OFF_MS ms, enabled = $ON_MS ms"
    if [ -z "$BEST_OFF" ] || [ "$OFF_MS" -lt "$BEST_OFF" ]; then BEST_OFF="$OFF_MS"; fi
    if [ -z "$BEST_ON" ] || [ "$ON_MS" -lt "$BEST_ON" ]; then BEST_ON="$ON_MS"; fi
done
ALLOWED=$((BEST_OFF + BEST_OFF * 3 / 100 + 50))
if [ "$BEST_ON" -gt "$ALLOWED" ]; then
    echo "telemetry smoke FAILED: enabled rebuild ($BEST_ON ms) above disabled ($BEST_OFF ms) + 3% + 50 ms" >&2
    exit 1
fi
echo "telemetry smoke OK: enabled = $BEST_ON ms <= disabled = $BEST_OFF ms + 3% + 50 ms; report at $METRICS_OUT"

# Snapshot-cache cold vs warm: a warm `--snapshot-cache` run must reach
# its first detection round at least 5x faster than cold extraction on the
# 240-source corpus (the binary also asserts cold and warm reports are
# bit-identical before the speedup is trusted).
echo
echo "== snapshot cache: cold vs warm (240 sources) =="
cargo build --offline -q --release -p midas-bench --bin snapshot_coldwarm
COLDWARM="$(./target/release/snapshot_coldwarm --entities 250 --threads 4)"
printf '%s\n' "$COLDWARM" | tee -a "$OUT"
SPEEDUP="$(printf '%s' "$COLDWARM" | sed -n 's/.*"speedup":\([0-9]*\)\..*/\1/p')"
if [ "$SPEEDUP" -lt 5 ]; then
    echo "snapshot smoke FAILED: warm run only ${SPEEDUP}x faster than cold (need >= 5x)" >&2
    exit 1
fi
echo "snapshot smoke OK: warm run ${SPEEDUP}x faster than cold"

# Counter drift across PRs: diff the two most recent METRICS_PR<N>.json
# reports. Work counters are machine-independent, so drift beyond the
# threshold means a code path genuinely changed how much it does. Skipped
# (not failed) when only this PR's report exists.
echo
echo "== metrics_compare.py =="
METRICS_COUNT="$(find . -maxdepth 1 -name 'METRICS_PR*.json' | wc -l)"
if [ "$METRICS_COUNT" -ge 2 ]; then
    python3 scripts/metrics_compare.py
else
    echo "metrics compare SKIPPED: fewer than two METRICS_PR*.json reports ($METRICS_COUNT found)"
fi

echo
echo "== $OUT =="
cat "$OUT"

# Fault-injection smoke: a run with injected worker faults must complete
# cleanly and quarantine exactly the targeted sources.
echo
echo "== fault-injection smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --offline -q -p midas-cli -- \
    generate --dataset kvault --scale 0.05 --out "$SMOKE_DIR"
FAULTED="$(MIDAS_FAULTINJECT='panic@#0,budget@#1' cargo run --offline -q -p midas-cli -- \
    discover --facts "$SMOKE_DIR/facts.tsv" --kb "$SMOKE_DIR/kb.tsv" \
    --lenient --threads 4 --top 5)"
printf '%s\n' "$FAULTED" | tail -n 6
if ! printf '%s\n' "$FAULTED" | grep -q "quarantined 2 source(s)"; then
    echo "fault-injection smoke FAILED: expected 2 quarantined sources" >&2
    exit 1
fi
echo "fault-injection smoke OK"

# Resume-vs-rerun bit-identity: kill the augmentation loop at the commit
# of its second round checkpoint, `--resume`, and require the resumed
# stdout (minus cache/resume notes, wall-clock pinned by
# MIDAS_FIXED_TIMING) to be byte-identical to an uninterrupted run.
echo
echo "== resume vs rerun: bit-identity after a mid-loop kill =="
cargo build --offline -q -p midas-cli
MIDAS_BIN="./target/debug/midas"
strip_notes() { grep -v -e '^snapshot cache' -e '^slice cache' -e '^resume' "$1" > "$2"; }
AUG_ARGS=(augment --facts "$SMOKE_DIR/facts.tsv" --kb "$SMOKE_DIR/kb.tsv" --rounds 4 --threads 2)
MIDAS_FIXED_TIMING=1 "$MIDAS_BIN" "${AUG_ARGS[@]}" > "$SMOKE_DIR/rerun.txt"
set +e
MIDAS_FIXED_TIMING=1 MIDAS_CRASHPOINT='ckpt.renamed@2' \
    "$MIDAS_BIN" "${AUG_ARGS[@]}" --snapshot-cache "$SMOKE_DIR/cache" \
    > /dev/null 2> "$SMOKE_DIR/crash.err"
CRASH_STATUS=$?
set -e
if [ "$CRASH_STATUS" -eq 0 ] || ! grep -q 'crashpoint: aborting' "$SMOKE_DIR/crash.err"; then
    echo "resume smoke FAILED: crashpoint did not fire (status $CRASH_STATUS)" >&2
    exit 1
fi
MIDAS_FIXED_TIMING=1 "$MIDAS_BIN" "${AUG_ARGS[@]}" \
    --snapshot-cache "$SMOKE_DIR/cache" --resume > "$SMOKE_DIR/resumed.txt"
if ! grep -q 'resume: replayed 2 checkpointed round(s)' "$SMOKE_DIR/resumed.txt"; then
    echo "resume smoke FAILED: expected 2 replayed rounds" >&2
    exit 1
fi
strip_notes "$SMOKE_DIR/rerun.txt" "$SMOKE_DIR/rerun.body"
strip_notes "$SMOKE_DIR/resumed.txt" "$SMOKE_DIR/resumed.body"
if ! cmp -s "$SMOKE_DIR/rerun.body" "$SMOKE_DIR/resumed.body"; then
    echo "resume smoke FAILED: resumed output differs from uninterrupted run" >&2
    diff "$SMOKE_DIR/rerun.body" "$SMOKE_DIR/resumed.body" >&2 || true
    exit 1
fi
echo "resume smoke OK: resumed run byte-identical to uninterrupted run"
