#!/usr/bin/env bash
# Bench smoke runner: exercises the hot-path criterion benches at reduced
# sample counts and records one JSON line per benchmark in BENCH_PR4.json
# at the repo root (appended by the in-repo criterion shim — see
# crates/shims/criterion; every line carries a peak_rss_kb field).
#
# Entirely offline: the workspace builds with `--offline` against the
# vendored/shimmed dependency set; no registry access and no new external
# dependencies are required (verify with `cargo tree --offline`).
#
# Usage: scripts/bench_smoke.sh [output.json] [samples]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR6.json}"
SAMPLES="${2:-10}"

# cargo runs bench binaries with the package directory as cwd, so anchor a
# relative output path to the repo root before exporting it.
case "$OUT" in
    /*) ;;
    *) OUT="$PWD/$OUT" ;;
esac

rm -f "$OUT"
export MIDAS_BENCH_JSON="$OUT"
export MIDAS_BENCH_SAMPLES="$SAMPLES"

for bench in hierarchy_build profit_eval interning; do
    echo "== $bench (samples=$SAMPLES) =="
    cargo bench --offline -p midas-bench --bench "$bench"
done

# Peak-RSS comparison: the streaming window must reduce peak resident
# memory on a ≥200-source corpus. VmHWM is process-wide and monotone, so
# each configuration runs in its own process.
echo
echo "== peak RSS: --stream-window 8 vs unbounded =="
cargo build --offline -q --release -p midas-bench --bin peak_rss
WINDOWED="$(./target/release/peak_rss --stream-window 8)"
UNBOUNDED="$(./target/release/peak_rss)"
printf '%s\n%s\n' "$WINDOWED" "$UNBOUNDED" | tee -a "$OUT"
rss_of() { printf '%s' "$1" | sed -n 's/.*"peak_rss_kb":\([0-9]*\).*/\1/p'; }
W_KB="$(rss_of "$WINDOWED")"
U_KB="$(rss_of "$UNBOUNDED")"
if [ "$W_KB" -ge "$U_KB" ]; then
    echo "peak-RSS smoke FAILED: window 8 ($W_KB KiB) not below unbounded ($U_KB KiB)" >&2
    exit 1
fi
echo "peak-RSS smoke OK: window 8 = $W_KB KiB < unbounded = $U_KB KiB"

# Incremental augmentation loop: every warm round replays the clean
# subtrees from the round cache, so the summed warm-round incremental
# suggest time must beat the summed from-scratch rebuilds (the binary
# itself asserts bit-identical results every round).
echo
echo "== augmentation loop: incremental vs from-scratch rebuild =="
cargo build --offline -q --release -p midas-bench --bin augment_rounds
AUGMENT="$(./target/release/augment_rounds --threads 4)"
printf '%s\n' "$AUGMENT" | tee -a "$OUT"
ms_of() { printf '%s\n' "$AUGMENT" | grep warm_total | sed -n "s/.*\"$1_ms\":\([0-9]*\)\..*/\1/p"; }
INCR_MS="$(ms_of incremental)"
FRESH_MS="$(ms_of rebuild)"
if [ "$INCR_MS" -ge "$FRESH_MS" ]; then
    echo "augmentation smoke FAILED: warm incremental ($INCR_MS ms) not below rebuild ($FRESH_MS ms)" >&2
    exit 1
fi
echo "augmentation smoke OK: warm incremental = $INCR_MS ms < rebuild = $FRESH_MS ms"

# Snapshot-cache cold vs warm: a warm `--snapshot-cache` run must reach
# its first detection round at least 5x faster than cold extraction on the
# 240-source corpus (the binary also asserts cold and warm reports are
# bit-identical before the speedup is trusted).
echo
echo "== snapshot cache: cold vs warm (240 sources) =="
cargo build --offline -q --release -p midas-bench --bin snapshot_coldwarm
COLDWARM="$(./target/release/snapshot_coldwarm --entities 250 --threads 4)"
printf '%s\n' "$COLDWARM" | tee -a "$OUT"
SPEEDUP="$(printf '%s' "$COLDWARM" | sed -n 's/.*"speedup":\([0-9]*\)\..*/\1/p')"
if [ "$SPEEDUP" -lt 5 ]; then
    echo "snapshot smoke FAILED: warm run only ${SPEEDUP}x faster than cold (need >= 5x)" >&2
    exit 1
fi
echo "snapshot smoke OK: warm run ${SPEEDUP}x faster than cold"

echo
echo "== $OUT =="
cat "$OUT"

# Fault-injection smoke: a run with injected worker faults must complete
# cleanly and quarantine exactly the targeted sources.
echo
echo "== fault-injection smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --offline -q -p midas-cli -- \
    generate --dataset kvault --scale 0.05 --out "$SMOKE_DIR"
FAULTED="$(MIDAS_FAULTINJECT='panic@#0,budget@#1' cargo run --offline -q -p midas-cli -- \
    discover --facts "$SMOKE_DIR/facts.tsv" --kb "$SMOKE_DIR/kb.tsv" \
    --lenient --threads 4 --top 5)"
printf '%s\n' "$FAULTED" | tail -n 6
if ! printf '%s\n' "$FAULTED" | grep -q "quarantined 2 source(s)"; then
    echo "fault-injection smoke FAILED: expected 2 quarantined sources" >&2
    exit 1
fi
echo "fault-injection smoke OK"
