#!/usr/bin/env bash
# Bench smoke runner: exercises the hot-path criterion benches at reduced
# sample counts and records one JSON line per benchmark in BENCH_PR1.json
# at the repo root (appended by the in-repo criterion shim — see
# crates/shims/criterion).
#
# Entirely offline: the workspace builds with `--offline` against the
# vendored/shimmed dependency set; no registry access and no new external
# dependencies are required (verify with `cargo tree --offline`).
#
# Usage: scripts/bench_smoke.sh [output.json] [samples]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR1.json}"
SAMPLES="${2:-10}"

# cargo runs bench binaries with the package directory as cwd, so anchor a
# relative output path to the repo root before exporting it.
case "$OUT" in
    /*) ;;
    *) OUT="$PWD/$OUT" ;;
esac

rm -f "$OUT"
export MIDAS_BENCH_JSON="$OUT"
export MIDAS_BENCH_SAMPLES="$SAMPLES"

for bench in hierarchy_build profit_eval interning; do
    echo "== $bench (samples=$SAMPLES) =="
    cargo bench --offline -p midas-bench --bench "$bench"
done

echo
echo "== $OUT =="
cat "$OUT"

# Fault-injection smoke: a run with injected worker faults must complete
# cleanly and quarantine exactly the targeted sources.
echo
echo "== fault-injection smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --offline -q -p midas-cli -- \
    generate --dataset kvault --scale 0.05 --out "$SMOKE_DIR"
FAULTED="$(MIDAS_FAULTINJECT='panic@#0,budget@#1' cargo run --offline -q -p midas-cli -- \
    discover --facts "$SMOKE_DIR/facts.tsv" --kb "$SMOKE_DIR/kb.tsv" \
    --lenient --threads 4 --top 5)"
printf '%s\n' "$FAULTED" | tail -n 6
if ! printf '%s\n' "$FAULTED" | grep -q "quarantined 2 source(s)"; then
    echo "fault-injection smoke FAILED: expected 2 quarantined sources" >&2
    exit 1
fi
echo "fault-injection smoke OK"
